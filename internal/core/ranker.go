package core

import (
	"fmt"
	"math"
	"sort"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/multires"
	"surfknn/internal/obs"
	"surfknn/internal/sdn"
	"surfknn/internal/stats"
	"surfknn/internal/workload"
)

// Options tunes query execution. The zero value enables every optimisation
// from the paper (integrated I/O regions, dummy lower bounds).
type Options struct {
	// DisableIOIntegration turns off merging of significantly overlapping
	// candidate I/O regions (§4.2, Fig. 9 studies this switch).
	DisableIOIntegration bool
	// DisableDummyLB turns off the envelope-based dummy-lower-bound
	// optimisation (§4.2.2).
	DisableDummyLB bool
	// Step2Accuracy is the lb/ub accuracy at which step 2 stops tightening
	// the k-th neighbour's upper bound. Zero (the zero value) selects the
	// paper's default 0.8; to request a literal 0 — accept any bound, no
	// tightening — pass a negative value.
	Step2Accuracy float64
	// OverlapThreshold is the minimum overlap fraction for merging I/O
	// regions. Zero (the zero value) selects the paper's default 0.8 ("e.g.,
	// over 80%"); to request a literal 0 — merge any intersecting regions —
	// pass a negative value.
	OverlapThreshold float64
	// BothFamilyLB estimates lower bounds with both cutting-plane families
	// and keeps the larger — a strictly tighter bound at roughly twice the
	// lower-bound CPU (an extension over the paper's 45° heuristic).
	BothFamilyLB bool
}

func (o Options) withDefaults() Options {
	o.Step2Accuracy = resolveFraction(o.Step2Accuracy, 0.8)
	o.OverlapThreshold = resolveFraction(o.OverlapThreshold, 0.8)
	return o
}

// resolveFraction maps an Options fraction to its effective value: the zero
// value keeps the paper's default, and a negative input selects a literal 0
// (which would otherwise be unreachable, since 0 is the unset marker).
func resolveFraction(v, def float64) float64 {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	default:
		return v
	}
}

// Neighbor is one result entry with its final distance range.
type Neighbor struct {
	Object workload.Object
	LB, UB float64
}

type candState uint8

const (
	candActive candState = iota
	candIn
	candOut
)

type candidate struct {
	obj    workload.Object
	lb, ub float64
	ubPath []multires.NodeID
	lbPath []sdn.Segment
	state  candState
	// Cached I/O region (the ellipse MBR of regionOf). It depends only on
	// ub, which each iteration reads several times between changes
	// (grouping, UB update, LB update), so it is memoised here and
	// invalidated by setUB.
	region   geom.MBR
	regionOK bool
}

// setUB lowers the candidate's upper bound and invalidates the cached I/O
// region that was derived from the old bound.
func (c *candidate) setUB(v float64) {
	c.ub = v
	c.regionOK = false
}

// ranker runs the surface-distance ranking of §4.2 over a candidate set.
type ranker struct {
	s     *Session
	q     mesh.SurfacePoint
	k     int
	sched Schedule
	opt   Options
	pc    *stats.PhaseCost // open phase the work counters accumulate into
	cands []*candidate
	// tighten keeps refining even after the k-set is determined, until the
	// k-th neighbour's range reaches Step2Accuracy — the extra work step 2
	// performs to obtain a tight search radius for step 3.
	tighten bool
}

// rank ranks the objects and returns the k nearest by the reference
// surface metric, with their final ranges. The work counters accumulate
// into the session's open cost phase. A non-nil error means a paged fetch
// failed, in which case the bounds are unreliable and the query must not
// pretend to have an answer.
//
//sklint:hotpath
func (s *Session) rank(q mesh.SurfacePoint, objs []workload.Object, k int, sched Schedule, opt Options, tighten bool) ([]Neighbor, error) {
	opt = opt.withDefaults()
	if k > len(objs) {
		k = len(objs)
	}
	r := &ranker{s: s, q: q, k: k, sched: sched, opt: opt, pc: s.curPhase(), tighten: tighten}
	for _, o := range objs {
		r.cands = append(r.cands, &candidate{
			obj: o,
			lb:  q.Pos.Dist(o.Point.Pos), // Euclidean floor (§4.2)
			ub:  math.Inf(1),
		})
	}
	r.pc.Candidates += len(objs)
	if err := r.run(); err != nil {
		return nil, err
	}
	return r.results(), nil
}

func (r *ranker) run() error {
	steps := r.sched.Steps()
	for it := 0; it < steps; it++ {
		if err := r.s.interrupted(); err != nil {
			return err
		}
		if r.classify() && !r.needTightening() {
			return nil
		}
		targets := r.refinementTargets()
		if len(targets) == 0 {
			return nil
		}
		r.pc.Iterations++
		dmRes, sdnRes := r.sched.At(it)
		span := r.iterSpan(it, dmRes, sdnRes, len(targets))
		err := r.iterate(targets, dmRes, sdnRes)
		r.s.endSpan(span)
		if err != nil {
			return err
		}
	}
	if r.classify() && !r.needTightening() {
		return nil
	}
	// Ladders exhausted with overlapping ranges left: settle the remaining
	// candidates with the reference (pathnet) distance, as the refinement
	// step of filter-and-refine.
	for _, c := range r.cands {
		if c.state == candOut {
			continue
		}
		if c.ub-c.lb < 1e-9*(1+c.ub) {
			continue
		}
		d := r.s.path.DistanceWithin(r.q, c.obj.Point, r.regionOf(c))
		if math.IsInf(d, 1) {
			// Region clipped every path; retry unclipped. The discarded
			// second result is the path polyline, not an error — an
			// unreachable candidate keeps ub = +Inf and can never displace
			// a finite neighbour.
			d, _ = r.s.path.Distance(r.q, c.obj.Point)
		}
		r.pc.UpperBounds++
		c.setUB(d)
		c.lb = d
	}
	r.classify()
	return nil
}

// iterSpan opens a trace span for one LOD refinement iteration, labelled
// with the iteration index, the DMTM/SDN resolutions and the number of
// refinement targets. Returns obs.NoSpan (and allocates nothing) when the
// query records no trace.
func (r *ranker) iterSpan(it int, dmRes, sdnRes float64, targets int) obs.SpanID {
	if r.s.cost.trace == nil {
		return obs.NoSpan
	}
	return r.s.startSpan("iter", map[string]float64{
		"i":       float64(it),
		"dm_res":  dmRes,
		"sdn_res": sdnRes,
		"targets": float64(targets),
	})
}

// needTightening reports whether step-2 style tightening still wants work:
// the k-th candidate's own range accuracy has not reached Step2Accuracy.
func (r *ranker) needTightening() bool {
	if !r.tighten {
		return false
	}
	c := r.kthCand()
	if c == nil || math.IsInf(c.ub, 1) {
		return true
	}
	return c.lb/c.ub < r.opt.Step2Accuracy
}

// refinementTargets returns the candidates to refine this iteration: the
// active ones, plus (when tightening) the already-resolved in-set.
func (r *ranker) refinementTargets() []*candidate {
	var out []*candidate
	for _, c := range r.cands {
		switch {
		case c.state == candActive:
			out = append(out, c)
		// An in-set candidate with no finite upper bound yet always needs
		// work (without the explicit check, Step2Accuracy 0 would compute
		// lb < 0·Inf = NaN and never tighten, leaving step 2 unbounded).
		case r.tighten && c.state == candIn &&
			(math.IsInf(c.ub, 1) || c.lb < r.opt.Step2Accuracy*c.ub):
			out = append(out, c)
		}
	}
	return out
}

// regionOf returns the candidate's current I/O region: the MBR of the
// ellipse with foci at the query and the candidate and constant equal to
// the current upper bound — or the whole terrain before any bound exists
// ("the I/O region is initially set to the entire terrain").
func (r *ranker) regionOf(c *candidate) geom.MBR {
	if c.regionOK {
		return c.region
	}
	m := r.s.db.Mesh.Extent()
	if !math.IsInf(c.ub, 1) {
		if e := geom.NewEllipse(r.q.XY(), c.obj.Point.XY(), c.ub).MBR(); !e.IsEmpty() {
			m = e
		}
	}
	c.region, c.regionOK = m, true
	return m
}

// ioGroup is a set of candidates whose I/O regions were merged.
type ioGroup struct {
	region geom.MBR
	cands  []*candidate
}

// groupRegions merges candidate I/O regions that overlap by at least the
// configured threshold (§4.1: "their I/O regions can be combined if they
// are significantly overlapped (e.g., over 80%)").
func (r *ranker) groupRegions(targets []*candidate) []*ioGroup {
	var groups []*ioGroup
	for _, c := range targets {
		reg := r.regionOf(c)
		if !r.opt.DisableIOIntegration {
			merged := false
			for _, g := range groups {
				if g.region.OverlapFraction(reg) >= r.opt.OverlapThreshold {
					g.region = g.region.Union(reg)
					g.cands = append(g.cands, c)
					merged = true
					break
				}
			}
			if merged {
				continue
			}
		}
		groups = append(groups, &ioGroup{region: reg, cands: []*candidate{c}})
	}
	return groups
}

// iterate performs one resolution iteration over the targets. A fetch
// failure aborts the iteration: continuing with partial terrain data would
// produce bounds that violate the ladder's monotonicity guarantee.
func (r *ranker) iterate(targets []*candidate, dmRes, sdnRes float64) error {
	groups := r.groupRegions(targets)
	level := SDNLevel(sdnRes)
	kthUB := r.kthSmallestUB()
	for _, g := range groups {
		// One fetch per integrated I/O region: DMTM connectivity at this
		// LOD plus the SDN segments of this level.
		tm := int32(0)
		if dmRes < PathnetResolution {
			tm = r.s.db.Tree.TimeForResolution(dmRes)
		}
		edgeIDs, err := r.s.fetchDMTM(g.region, tm)
		if err != nil {
			return fmt.Errorf("core: fetching DMTM records: %w", err)
		}
		if _, err := r.s.fetchSDN(g.region, level); err != nil {
			return fmt.Errorf("core: fetching SDN records: %w", err)
		}

		for _, c := range g.cands {
			r.updateUB(c, dmRes, tm, edgeIDs)
			r.updateLB(c, sdnRes, kthUB)
		}
	}
	return nil
}

// updateUB refines the candidate's upper bound at the given DMTM level
// (§4.2.1). The bound is kept as the running minimum, so a failed or looser
// estimate never hurts correctness.
func (r *ranker) updateUB(c *candidate, dmRes float64, tm int32, edgeIDs []int32) {
	r.pc.UpperBounds++
	region := r.regionOf(c)
	if dmRes >= PathnetResolution {
		d := r.s.path.DistanceWithin(r.q, c.obj.Point, region)
		if d < c.ub {
			c.setUB(d)
			// At the pathnet level the network distance IS the reference
			// surface distance (dN = dS at DMTM 200%, §5.3), so the lower
			// bound may be raised to it as well.
			if d > c.lb {
				c.lb = d
			}
		}
		return
	}
	// Refined search region: the descendants of the previous upper-bound
	// path, represented by those nodes' subtree MBRs (Fig. 6(b)).
	refined := r.refinedRegions(c)
	est := r.tryUpperBound(c, tm, edgeIDs, region, refined)
	if math.IsInf(est.UB, 1) && len(refined) > 0 {
		// "If it is too narrow to compute the shortest network path, its
		// area will be expanded by double each vertex's MBR."
		for i := range refined {
			refined[i] = refined[i].Expand(math.Max(refined[i].Width(), refined[i].Height()) / 2)
		}
		est = r.tryUpperBound(c, tm, edgeIDs, region, refined)
		if math.IsInf(est.UB, 1) {
			est = r.tryUpperBound(c, tm, edgeIDs, region, nil)
		}
	}
	if est.UB < c.ub {
		c.setUB(est.UB)
		c.ubPath = est.Path
	}
}

func (r *ranker) tryUpperBound(c *candidate, tm int32, edgeIDs []int32, region geom.MBR, refined []geom.MBR) multires.UpperEstimate {
	tree := r.s.db.Tree
	filter := func(e multires.EdgeRec) bool {
		minX, minY, maxX, maxY := tree.EdgeMBR(e)
		em := geom.MBR{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
		if !em.Intersects(region) {
			return false
		}
		if len(refined) == 0 {
			return true
		}
		for _, m := range refined {
			if m.Intersects(em) {
				return true
			}
		}
		return false
	}
	nw := tree.NetworkFromEdgeIDs(tm, edgeIDs, filter)
	return nw.UpperBound(r.s.db.Mesh, r.q, c.obj.Point)
}

// refinedRegions converts the previous upper-bound path into its
// search-region MBRs.
func (r *ranker) refinedRegions(c *candidate) []geom.MBR {
	if len(c.ubPath) == 0 {
		return nil
	}
	out := make([]geom.MBR, 0, len(c.ubPath))
	for _, v := range c.ubPath {
		out = append(out, r.s.db.Tree.Nodes[v].MBR)
	}
	return out
}

// updateLB refines the candidate's lower bound at the given SDN resolution
// (§4.2.2), using the dummy-lower-bound envelope optimisation when enabled:
// the cheap envelope estimate is an over-estimate of the true lower bound,
// so if IT cannot re-rank the candidate the true bound cannot either and
// the expensive full computation is skipped.
func (r *ranker) updateLB(c *candidate, sdnRes float64, kthUB float64) {
	r.pc.LowerBounds++
	region := r.regionOf(c)
	q3, o3 := r.q.Pos, c.obj.Point.Pos
	if r.opt.DisableDummyLB || len(c.lbPath) == 0 {
		r.applyLB(c, r.fullLB(q3, o3, region, sdnRes))
		return
	}
	margin := 2 * r.s.db.MSDN.Spacing
	dummy := r.s.db.MSDN.LowerBoundEnvelope(q3, o3, region, sdnRes, c.lbPath, margin)
	dummyLB := math.Max(c.lb, dummy.LB)
	// Would the (over-estimated) dummy bound change this candidate's fate?
	if dummyLB <= kthUB {
		// Not even the optimistic bound can exclude it: the true bound at
		// this resolution cannot either; skip the full computation.
		return
	}
	r.applyLB(c, r.fullLB(q3, o3, region, sdnRes))
}

// fullLB runs the configured full lower-bound estimation.
func (r *ranker) fullLB(q3, o3 geom.Vec3, region geom.MBR, sdnRes float64) sdn.LowerEstimate {
	if r.opt.BothFamilyLB {
		return r.s.db.MSDN.LowerBoundBoth(q3, o3, region, sdnRes)
	}
	return r.s.db.MSDN.LowerBound(q3, o3, region, sdnRes)
}

func (r *ranker) applyLB(c *candidate, est sdn.LowerEstimate) {
	if est.LB > c.lb {
		c.lb = est.LB
	}
	if c.lb > c.ub {
		c.lb = c.ub // the reference metric sits inside [lb, ub]
	}
	if len(est.Path) > 0 {
		c.lbPath = est.Path
	}
}

// kthCand returns the candidate holding the k-th smallest upper bound
// among non-out candidates, or nil when fewer than k remain.
func (r *ranker) kthCand() *candidate {
	alive := r.aliveCands()
	if len(alive) < r.k {
		return nil
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].ub < alive[j].ub })
	return alive[r.k-1]
}

// kthSmallestUB returns the k-th smallest upper bound among non-out
// candidates.
func (r *ranker) kthSmallestUB() float64 {
	if c := r.kthCand(); c != nil {
		return c.ub
	}
	return math.Inf(1)
}

// classify updates candidate states and reports whether the k-set is
// determined: the k alive candidates with the smallest upper bounds are
// separated from every other alive candidate's lower bound (the VA-file
// termination rule ub(p_k) <= lb(p_{k+1}) generalised to sets).
func (r *ranker) classify() bool {
	alive := r.aliveCands()
	if len(alive) <= r.k {
		for _, c := range alive {
			c.state = candIn
		}
		return true
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].ub < alive[j].ub })
	kthUB := alive[r.k-1].ub
	const eps = 1e-9
	// Exclusion: a candidate whose lower bound exceeds the k-th upper
	// bound can never enter the result.
	for _, c := range alive[r.k:] {
		if c.state == candActive && c.lb > kthUB*(1+eps)+eps {
			c.state = candOut
		}
	}
	alive = r.aliveCands()
	if len(alive) <= r.k {
		for _, c := range alive {
			c.state = candIn
		}
		return true
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].ub < alive[j].ub })
	// Inclusion: fewer than k candidates could possibly be closer.
	for i, c := range alive[:r.k] {
		if c.state != candActive {
			continue
		}
		closer := 0
		for j, o := range alive {
			if j != i && o.lb <= c.ub+eps {
				closer++
			}
		}
		if closer <= r.k-1 {
			c.state = candIn
		}
	}
	// Termination: the k smallest-ub alive candidates beat everyone else's
	// lower bound.
	maxTopUB := alive[r.k-1].ub
	minRestLB := math.Inf(1)
	for _, c := range alive[r.k:] {
		if c.lb < minRestLB {
			minRestLB = c.lb
		}
	}
	return maxTopUB <= minRestLB+eps
}

func (r *ranker) aliveCands() []*candidate {
	var out []*candidate
	for _, c := range r.cands {
		if c.state != candOut {
			out = append(out, c)
		}
	}
	return out
}

// results returns the k nearest candidates, ranked by upper bound.
func (r *ranker) results() []Neighbor {
	alive := r.aliveCands()
	sort.Slice(alive, func(i, j int) bool { return alive[i].ub < alive[j].ub })
	if len(alive) > r.k {
		alive = alive[:r.k]
	}
	out := make([]Neighbor, len(alive))
	for i, c := range alive {
		out[i] = Neighbor{Object: c.obj, LB: c.lb, UB: c.ub}
	}
	return out
}

package core

import (
	"fmt"
	"math"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/multires"
	"surfknn/internal/obs"
	"surfknn/internal/sdn"
	"surfknn/internal/stats"
	"surfknn/internal/workload"
)

// Options tunes query execution. The zero value enables every optimisation
// from the paper (integrated I/O regions, dummy lower bounds).
type Options struct {
	// DisableIOIntegration turns off merging of significantly overlapping
	// candidate I/O regions (§4.2, Fig. 9 studies this switch).
	DisableIOIntegration bool
	// DisableDummyLB turns off the envelope-based dummy-lower-bound
	// optimisation (§4.2.2).
	DisableDummyLB bool
	// Step2Accuracy is the lb/ub accuracy at which step 2 stops tightening
	// the k-th neighbour's upper bound. Zero (the zero value) selects the
	// paper's default 0.8; to request a literal 0 — accept any bound, no
	// tightening — pass a negative value.
	Step2Accuracy float64
	// OverlapThreshold is the minimum overlap fraction for merging I/O
	// regions. Zero (the zero value) selects the paper's default 0.8 ("e.g.,
	// over 80%"); to request a literal 0 — merge any intersecting regions —
	// pass a negative value.
	OverlapThreshold float64
	// BothFamilyLB estimates lower bounds with both cutting-plane families
	// and keeps the larger — a strictly tighter bound at roughly twice the
	// lower-bound CPU (an extension over the paper's 45° heuristic).
	BothFamilyLB bool
}

func (o Options) withDefaults() Options {
	o.Step2Accuracy = resolveFraction(o.Step2Accuracy, 0.8)
	o.OverlapThreshold = resolveFraction(o.OverlapThreshold, 0.8)
	return o
}

// resolveFraction maps an Options fraction to its effective value: the zero
// value keeps the paper's default, and a negative input selects a literal 0
// (which would otherwise be unreachable, since 0 is the unset marker).
func resolveFraction(v, def float64) float64 {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	default:
		return v
	}
}

// Neighbor is one result entry with its final distance range.
type Neighbor struct {
	Object workload.Object
	LB, UB float64
}

type candState uint8

const (
	candActive candState = iota
	candIn
	candOut
)

type candidate struct {
	obj    workload.Object
	lb, ub float64
	// ubPath/lbPath are per-slot copies of the last refinement paths. The
	// estimators return paths aliasing their own scratch, so they are copied
	// here; the buffers are retained across queries by the candidate slab.
	ubPath []multires.NodeID
	lbPath []sdn.Segment
	state  candState
	// Cached I/O region (the ellipse MBR of regionOf). It depends only on
	// ub, which each iteration reads several times between changes
	// (grouping, UB update, LB update), so it is memoised here and
	// invalidated by setUB.
	region   geom.MBR
	regionOK bool
}

// setUB lowers the candidate's upper bound and invalidates the cached I/O
// region that was derived from the old bound.
func (c *candidate) setUB(v float64) {
	c.ub = v
	c.regionOK = false
}

// ranker runs the surface-distance ranking of §4.2 over a candidate set.
// One ranker lives inside each Session and is reused query after query: the
// candidate slab and every ordering/grouping buffer below are retained, so
// a warm ranking pass performs no allocation. All pointer scratch
// (targets, alive) points into the cands slab, which therefore must never
// reallocate while a query runs — ensure() sizes it before ranking starts.
type ranker struct {
	s     *Session
	q     mesh.SurfacePoint
	k     int
	sched Schedule
	opt   Options
	pc    *stats.PhaseCost // open phase the work counters accumulate into

	cands       []candidate  // candidate slab (path buffers retained per slot)
	targets     []*candidate // refinement-target scratch
	alive       []*candidate // aliveCands output; sorted in place
	groupRegion []geom.MBR   // running merged region per I/O group
	groupOf     []int32      // group index per target (parallel to targets)
	refined     []geom.MBR   // refined-region scratch, sized to the DDM tree
	resultsBuf  []Neighbor   // results() output; aliased by Result.Neighbors

	// tighten keeps refining even after the k-set is determined, until the
	// k-th neighbour's range reaches Step2Accuracy — the extra work step 2
	// performs to obtain a tight search radius for step 3.
	tighten bool
}

// ensure grows the per-candidate buffers to hold n candidates. Runs at
// query open (not on the annotated hot path); the ranking loops below then
// only ever grow slices within capacity.
func (r *ranker) ensure(n int) {
	if cap(r.cands) < n {
		r.cands = make([]candidate, 0, n)
	}
	if cap(r.targets) < n {
		r.targets = make([]*candidate, 0, n)
	}
	if cap(r.alive) < n {
		r.alive = make([]*candidate, 0, n)
	}
	if cap(r.groupRegion) < n {
		r.groupRegion = make([]geom.MBR, 0, n)
	}
	if cap(r.groupOf) < n {
		r.groupOf = make([]int32, 0, n)
	}
	if cap(r.resultsBuf) < n {
		r.resultsBuf = make([]Neighbor, 0, n)
	}
}

// begin opens a ranking pass over the session's open cost phase and
// truncates the candidate slab.
func (r *ranker) begin(s *Session, q mesh.SurfacePoint, k int, sched Schedule, opt Options, tighten bool) {
	r.s, r.q, r.k, r.sched, r.opt, r.tighten = s, q, k, sched, opt, tighten
	r.pc = s.curPhase()
	r.cands = r.cands[:0]
}

// addCand appends one candidate to the slab, reusing the slot's retained
// path buffers. Capacity is ensured at query open, so the slab never
// reallocates here and candidate pointers stay valid.
func (r *ranker) addCand(o workload.Object) {
	n := len(r.cands)
	r.cands = r.cands[:n+1]
	c := &r.cands[n]
	c.obj = o
	c.lb = r.q.Pos.Dist(o.Point.Pos) // Euclidean floor (§4.2)
	c.ub = math.Inf(1)
	c.ubPath = c.ubPath[:0]
	c.lbPath = c.lbPath[:0]
	c.state = candActive
	c.regionOK = false
}

// rank ranks the objects and returns the k nearest by the reference
// surface metric, with their final ranges. The work counters accumulate
// into the session's open cost phase. A non-nil error means a paged fetch
// failed, in which case the bounds are unreliable and the query must not
// pretend to have an answer. The returned slice is session scratch, valid
// until the session's next ranking pass.
//
//sklint:hotpath
func (s *Session) rank(q mesh.SurfacePoint, objs []workload.Object, k int, sched Schedule, opt Options, tighten bool) ([]Neighbor, error) {
	opt = opt.withDefaults()
	if k > len(objs) {
		k = len(objs)
	}
	r := &s.rk
	r.begin(s, q, k, sched, opt, tighten)
	for _, o := range objs {
		r.addCand(o)
	}
	r.pc.Candidates += len(objs)
	if err := r.run(); err != nil {
		return nil, err
	}
	return r.results(), nil
}

func (r *ranker) run() error {
	steps := r.sched.Steps()
	for it := 0; it < steps; it++ {
		if err := r.s.interrupted(); err != nil {
			return err
		}
		if r.classify() && !r.needTightening() {
			return nil
		}
		targets := r.refinementTargets()
		if len(targets) == 0 {
			return nil
		}
		r.pc.Iterations++
		dmRes, sdnRes := r.sched.At(it)
		span := r.iterSpan(it, dmRes, sdnRes, len(targets))
		err := r.iterate(targets, dmRes, sdnRes)
		r.s.endSpan(span)
		if err != nil {
			return err
		}
	}
	if r.classify() && !r.needTightening() {
		return nil
	}
	// Ladders exhausted with overlapping ranges left: settle the remaining
	// candidates with the reference (pathnet) distance, as the refinement
	// step of filter-and-refine.
	for i := range r.cands {
		c := &r.cands[i]
		if c.state == candOut {
			continue
		}
		if c.ub-c.lb < 1e-9*(1+c.ub) {
			continue
		}
		d := r.s.path.DistanceWithin(r.q, c.obj.Point, r.regionOf(c))
		if math.IsInf(d, 1) {
			// Region clipped every path; retry unclipped (value-only: the
			// polyline is not needed here) — an unreachable candidate keeps
			// ub = +Inf and can never displace a finite neighbour.
			d = r.s.path.DistanceValue(r.q, c.obj.Point)
		}
		r.pc.UpperBounds++
		c.setUB(d)
		c.lb = d
	}
	r.classify()
	return nil
}

// iterSpan opens a trace span for one LOD refinement iteration, labelled
// with the iteration index, the DMTM/SDN resolutions and the number of
// refinement targets. Returns obs.NoSpan (and allocates nothing) when the
// query records no trace.
func (r *ranker) iterSpan(it int, dmRes, sdnRes float64, targets int) obs.SpanID {
	if r.s.cost.trace == nil {
		return obs.NoSpan
	}
	//lint:ignore hotpath-alloc tracing only: the trace==nil guard above keeps untraced queries off this literal
	return r.s.startSpan("iter", map[string]float64{
		"i":       float64(it),
		"dm_res":  dmRes,
		"sdn_res": sdnRes,
		"targets": float64(targets),
	})
}

// needTightening reports whether step-2 style tightening still wants work:
// the k-th candidate's own range accuracy has not reached Step2Accuracy.
func (r *ranker) needTightening() bool {
	if !r.tighten {
		return false
	}
	c := r.kthCand()
	if c == nil || math.IsInf(c.ub, 1) {
		return true
	}
	return c.lb/c.ub < r.opt.Step2Accuracy
}

// refinementTargets returns the candidates to refine this iteration: the
// active ones, plus (when tightening) the already-resolved in-set. The
// returned slice is the ranker's target scratch.
func (r *ranker) refinementTargets() []*candidate {
	out := r.targets[:0]
	for i := range r.cands {
		c := &r.cands[i]
		// An in-set candidate with no finite upper bound yet always needs
		// work (without the explicit check, Step2Accuracy 0 would compute
		// lb < 0·Inf = NaN and never tighten, leaving step 2 unbounded).
		keep := c.state == candActive ||
			(r.tighten && c.state == candIn &&
				(math.IsInf(c.ub, 1) || c.lb < r.opt.Step2Accuracy*c.ub))
		if !keep {
			continue
		}
		n := len(out)
		out = out[:n+1]
		out[n] = c
	}
	r.targets = out
	return out
}

// regionOf returns the candidate's current I/O region: the MBR of the
// ellipse with foci at the query and the candidate and constant equal to
// the current upper bound — or the whole terrain before any bound exists
// ("the I/O region is initially set to the entire terrain").
func (r *ranker) regionOf(c *candidate) geom.MBR {
	if c.regionOK {
		return c.region
	}
	m := r.s.db.Mesh.Extent()
	if !math.IsInf(c.ub, 1) {
		if e := geom.NewEllipse(r.q.XY(), c.obj.Point.XY(), c.ub).MBR(); !e.IsEmpty() {
			m = e
		}
	}
	c.region, c.regionOK = m, true
	return m
}

// groupRegions merges candidate I/O regions that overlap by at least the
// configured threshold (§4.1: "their I/O regions can be combined if they
// are significantly overlapped (e.g., over 80%)"). Groups are stored flat:
// groupRegion[g] is the running merged region, and groupOf[i] assigns
// targets[i] to its group, preserving the per-group candidate order the
// pointer-based grouping produced. Returns the group count.
func (r *ranker) groupRegions(targets []*candidate) int {
	r.groupRegion = r.groupRegion[:0]
	r.groupOf = r.groupOf[:0]
	for _, c := range targets {
		reg := r.regionOf(c)
		gi := int32(-1)
		if !r.opt.DisableIOIntegration {
			for g := range r.groupRegion {
				if r.groupRegion[g].OverlapFraction(reg) >= r.opt.OverlapThreshold {
					r.groupRegion[g] = r.groupRegion[g].Union(reg)
					gi = int32(g)
					break
				}
			}
		}
		if gi < 0 {
			n := len(r.groupRegion)
			r.groupRegion = r.groupRegion[:n+1]
			r.groupRegion[n] = reg
			gi = int32(n)
		}
		n := len(r.groupOf)
		r.groupOf = r.groupOf[:n+1]
		r.groupOf[n] = gi
	}
	return len(r.groupRegion)
}

// iterate performs one resolution iteration over the targets. A fetch
// failure aborts the iteration: continuing with partial terrain data would
// produce bounds that violate the ladder's monotonicity guarantee.
func (r *ranker) iterate(targets []*candidate, dmRes, sdnRes float64) error {
	numGroups := r.groupRegions(targets)
	level := SDNLevel(sdnRes)
	kthUB := r.kthSmallestUB()
	for gi := 0; gi < numGroups; gi++ {
		// One fetch per integrated I/O region: DMTM connectivity at this
		// LOD plus the SDN segments of this level.
		tm := int32(0)
		if dmRes < PathnetResolution {
			tm = r.s.db.Tree.TimeForResolution(dmRes)
		}
		edgeIDs, err := r.s.fetchDMTM(r.groupRegion[gi], tm)
		if err != nil {
			//lint:ignore hotpath-alloc error path: allocates only when a terrain fetch fails, never on a successful query
			return fmt.Errorf("core: fetching DMTM records: %w", err)
		}
		if _, err := r.s.fetchSDN(r.groupRegion[gi], level); err != nil {
			//lint:ignore hotpath-alloc error path: allocates only when a terrain fetch fails, never on a successful query
			return fmt.Errorf("core: fetching SDN records: %w", err)
		}

		for ti, c := range targets {
			if r.groupOf[ti] != int32(gi) {
				continue
			}
			r.updateUB(c, dmRes, tm, edgeIDs)
			r.updateLB(c, sdnRes, kthUB)
		}
	}
	return nil
}

// updateUB refines the candidate's upper bound at the given DMTM level
// (§4.2.1). The bound is kept as the running minimum, so a failed or looser
// estimate never hurts correctness.
func (r *ranker) updateUB(c *candidate, dmRes float64, tm int32, edgeIDs []uint64) {
	r.pc.UpperBounds++
	region := r.regionOf(c)
	if dmRes >= PathnetResolution {
		d := r.s.path.DistanceWithin(r.q, c.obj.Point, region)
		if d < c.ub {
			c.setUB(d)
			// At the pathnet level the network distance IS the reference
			// surface distance (dN = dS at DMTM 200%, §5.3), so the lower
			// bound may be raised to it as well.
			if d > c.lb {
				c.lb = d
			}
		}
		return
	}
	// Refined search region: the descendants of the previous upper-bound
	// path, represented by those nodes' subtree MBRs (Fig. 6(b)).
	refined := r.refinedRegions(c)
	est := r.tryUpperBound(c, tm, edgeIDs, region, refined)
	if math.IsInf(est.UB, 1) && len(refined) > 0 {
		// "If it is too narrow to compute the shortest network path, its
		// area will be expanded by double each vertex's MBR."
		for i := range refined {
			refined[i] = refined[i].Expand(math.Max(refined[i].Width(), refined[i].Height()) / 2)
		}
		est = r.tryUpperBound(c, tm, edgeIDs, region, refined)
		if math.IsInf(est.UB, 1) {
			est = r.tryUpperBound(c, tm, edgeIDs, region, nil)
		}
	}
	if est.UB < c.ub {
		c.setUB(est.UB)
		// est.Path aliases the estimator's scratch: copy it into the slot's
		// retained buffer before the next estimation overwrites it.
		c.ubPath = append(c.ubPath[:0], est.Path...)
	}
}

// tryUpperBound runs one upper-bound estimation over the fetched edges,
// applying the search-region and refined-region filters inline while
// staging edges into the session's reusable network estimator (the
// allocation-free replacement for materialising a Network per estimate).
func (r *ranker) tryUpperBound(c *candidate, tm int32, edgeIDs []uint64, region geom.MBR, refined []geom.MBR) multires.UpperEstimate {
	tree := r.s.db.Tree
	e := r.s.est
	e.Begin(tm)
	for _, id := range edgeIDs {
		minX, minY, maxX, maxY := tree.EdgeMBR(tree.Edges[id])
		em := geom.MBR{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
		if !em.Intersects(region) {
			continue
		}
		if len(refined) > 0 {
			hit := false
			for _, m := range refined {
				if m.Intersects(em) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		e.AddEdge(int32(id))
	}
	return e.UpperBound(r.s.db.Mesh, r.q, c.obj.Point)
}

// refinedRegions converts the previous upper-bound path into its
// search-region MBRs, filling the ranker's refined scratch (sized to the
// DDM tree's node count, which bounds any path length).
func (r *ranker) refinedRegions(c *candidate) []geom.MBR {
	if len(c.ubPath) == 0 {
		return nil
	}
	out := r.refined[:len(c.ubPath)]
	for i, v := range c.ubPath {
		out[i] = r.s.db.Tree.Nodes[v].MBR
	}
	return out
}

// updateLB refines the candidate's lower bound at the given SDN resolution
// (§4.2.2), using the dummy-lower-bound envelope optimisation when enabled:
// the cheap envelope estimate is an over-estimate of the true lower bound,
// so if IT cannot re-rank the candidate the true bound cannot either and
// the expensive full computation is skipped.
func (r *ranker) updateLB(c *candidate, sdnRes float64, kthUB float64) {
	r.pc.LowerBounds++
	region := r.regionOf(c)
	q3, o3 := r.q.Pos, c.obj.Point.Pos
	if r.opt.DisableDummyLB || len(c.lbPath) == 0 {
		r.applyLB(c, r.fullLB(q3, o3, region, sdnRes))
		return
	}
	margin := 2 * r.s.db.MSDN.Spacing
	dummy := r.s.db.MSDN.LowerBoundEnvelopeScratch(&r.s.sdnSc, q3, o3, region, sdnRes, c.lbPath, margin)
	dummyLB := math.Max(c.lb, dummy.LB)
	// Would the (over-estimated) dummy bound change this candidate's fate?
	if dummyLB <= kthUB {
		// Not even the optimistic bound can exclude it: the true bound at
		// this resolution cannot either; skip the full computation.
		return
	}
	r.applyLB(c, r.fullLB(q3, o3, region, sdnRes))
}

// fullLB runs the configured full lower-bound estimation.
func (r *ranker) fullLB(q3, o3 geom.Vec3, region geom.MBR, sdnRes float64) sdn.LowerEstimate {
	if r.opt.BothFamilyLB {
		return r.s.db.MSDN.LowerBoundBothScratch(&r.s.sdnSc, q3, o3, region, sdnRes)
	}
	return r.s.db.MSDN.LowerBoundScratch(&r.s.sdnSc, q3, o3, region, sdnRes)
}

func (r *ranker) applyLB(c *candidate, est sdn.LowerEstimate) {
	if est.LB > c.lb {
		c.lb = est.LB
	}
	if c.lb > c.ub {
		c.lb = c.ub // the reference metric sits inside [lb, ub]
	}
	if len(est.Path) > 0 {
		// est.Path aliases the SDN scratch: copy it into the slot's retained
		// buffer before the next lower-bound call overwrites it.
		c.lbPath = append(c.lbPath[:0], est.Path...)
	}
}

// sortCandsByUB orders the pointer scratch by ascending upper bound with a
// stable insertion sort: candidate sets are small (tens), and unlike
// sort.Slice it performs no allocation on the hot path.
func sortCandsByUB(a []*candidate) {
	for i := 1; i < len(a); i++ {
		c := a[i]
		j := i - 1
		for j >= 0 && a[j].ub > c.ub {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = c
	}
}

// kthCand returns the candidate holding the k-th smallest upper bound
// among non-out candidates, or nil when fewer than k remain.
func (r *ranker) kthCand() *candidate {
	alive := r.aliveCands()
	if len(alive) < r.k {
		return nil
	}
	sortCandsByUB(alive)
	return alive[r.k-1]
}

// kthSmallestUB returns the k-th smallest upper bound among non-out
// candidates.
func (r *ranker) kthSmallestUB() float64 {
	if c := r.kthCand(); c != nil {
		return c.ub
	}
	return math.Inf(1)
}

// classify updates candidate states and reports whether the k-set is
// determined: the k alive candidates with the smallest upper bounds are
// separated from every other alive candidate's lower bound (the VA-file
// termination rule ub(p_k) <= lb(p_{k+1}) generalised to sets).
func (r *ranker) classify() bool {
	alive := r.aliveCands()
	if len(alive) <= r.k {
		for _, c := range alive {
			c.state = candIn
		}
		return true
	}
	sortCandsByUB(alive)
	kthUB := alive[r.k-1].ub
	const eps = 1e-9
	// Exclusion: a candidate whose lower bound exceeds the k-th upper
	// bound can never enter the result.
	for _, c := range alive[r.k:] {
		if c.state == candActive && c.lb > kthUB*(1+eps)+eps {
			c.state = candOut
		}
	}
	alive = r.aliveCands()
	if len(alive) <= r.k {
		for _, c := range alive {
			c.state = candIn
		}
		return true
	}
	sortCandsByUB(alive)
	// Inclusion: fewer than k candidates could possibly be closer.
	for i, c := range alive[:r.k] {
		if c.state != candActive {
			continue
		}
		closer := 0
		for j, o := range alive {
			if j != i && o.lb <= c.ub+eps {
				closer++
			}
		}
		if closer <= r.k-1 {
			c.state = candIn
		}
	}
	// Termination: the k smallest-ub alive candidates beat everyone else's
	// lower bound.
	maxTopUB := alive[r.k-1].ub
	minRestLB := math.Inf(1)
	for _, c := range alive[r.k:] {
		if c.lb < minRestLB {
			minRestLB = c.lb
		}
	}
	return maxTopUB <= minRestLB+eps
}

// aliveCands fills the alive scratch with pointers to every non-out slab
// candidate, in slab order. Each call retruncates the same buffer, so the
// previous call's view dies with it.
func (r *ranker) aliveCands() []*candidate {
	out := r.alive[:0]
	for i := range r.cands {
		if r.cands[i].state != candOut {
			n := len(out)
			out = out[:n+1]
			out[n] = &r.cands[i]
		}
	}
	r.alive = out
	return out
}

// results returns the k nearest candidates, ranked by upper bound, in the
// ranker's results buffer (aliased by Result.Neighbors).
func (r *ranker) results() []Neighbor {
	alive := r.aliveCands()
	sortCandsByUB(alive)
	if len(alive) > r.k {
		alive = alive[:r.k]
	}
	out := r.resultsBuf[:len(alive)]
	for i, c := range alive {
		out[i] = Neighbor{Object: c.obj, LB: c.lb, UB: c.ub}
	}
	return out
}

package core

import (
	"math"
	"testing"

	"surfknn/internal/dem"
)

// The quiesced-store golden test: with zero pending updates, the versioned
// object store must be bit-identical to the static pre-objstore path. The
// constants below were captured on the last static-Dxy revision (same
// build: BH preset, 16-grid, 60 objects, seeds 2006/77) — result IDs, the
// exact float bits of every bound, and Cost.Pages(). Any drift here means
// the epoch view changed traversal order, visit counting or candidate
// resolution, and breaks reproducibility of the paper's figures.
//
// One deliberate re-capture: MR3's page count dropped 422 → 378 when
// candidate enumeration switched to canonical (planar distance, id) order
// for sharded equivalence — processing near candidates first tightens the
// k-th bound earlier and prunes terrain fetches. Result bits were
// unchanged.

type goldenRow struct {
	id     int64
	lb, ub uint64 // math.Float64bits of the bounds
}

func checkGolden(t *testing.T, algo string, ns []Neighbor, pages int64, wantPages int64, want []goldenRow) {
	t.Helper()
	if pages != wantPages {
		t.Errorf("%s: Cost.Pages() = %d, want %d", algo, pages, wantPages)
	}
	if len(ns) != len(want) {
		t.Fatalf("%s: %d neighbours, want %d", algo, len(ns), len(want))
	}
	for i, w := range want {
		n := ns[i]
		if n.Object.ID != w.id {
			t.Errorf("%s[%d]: ID = %d, want %d", algo, i, n.Object.ID, w.id)
		}
		if got := math.Float64bits(n.LB); got != w.lb {
			t.Errorf("%s[%d]: LB bits = %#x, want %#x", algo, i, got, w.lb)
		}
		if got := math.Float64bits(n.UB); got != w.ub {
			t.Errorf("%s[%d]: UB bits = %#x, want %#x", algo, i, got, w.ub)
		}
	}
}

func TestGoldenQuiescedMatchesStaticPath(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 60, 2006)
	q := queryPoints(t, db, 1, 77)[0]
	if got, want := math.Float64bits(q.Pos.X), uint64(0x406163612e8a79fc); got != want {
		t.Fatalf("query X bits = %#x, want %#x (fixture drifted; golden values invalid)", got, want)
	}
	if got, want := math.Float64bits(q.Pos.Y), uint64(0x405fd134318b6b5b); got != want {
		t.Fatalf("query Y bits = %#x, want %#x (fixture drifted; golden values invalid)", got, want)
	}

	mr3, err := db.MR3(q, 5, S2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "MR3", mr3.Neighbors, mr3.Cost.Pages(), 378, []goldenRow{
		{20, 0x4028e4b039f595e0, 0x40335eb3937ffdba},
		{53, 0x403424139c8027f6, 0x403842bd91238e67},
		{47, 0x4042a6dd4f369057, 0x4042a6dd4f369057},
		{37, 0x40432d6bfc49d156, 0x40432d6bfc49d156},
		{15, 0x4043b3b92d299617, 0x4043b3b92d299617},
	})

	ea, err := db.EA(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "EA", ea.Neighbors, ea.Cost.Pages(), 477, []goldenRow{
		{20, 0x40335eb3937ffdba, 0x40335eb3937ffdba},
		{53, 0x403842bd91238e67, 0x403842bd91238e67},
		{47, 0x4042a6dd4f369057, 0x4042a6dd4f369057},
		{37, 0x40432d6bfc49d156, 0x40432d6bfc49d156},
		{15, 0x4043b3b92d299617, 0x4043b3b92d299617},
	})

	radius := db.Mesh.Extent().Width() / 4
	if got, want := math.Float64bits(radius), uint64(0x4044000000000000); got != want {
		t.Fatalf("radius bits = %#x, want %#x", got, want)
	}
	rng, err := db.SurfaceRange(q, radius, S1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "Range", rng.Neighbors, rng.Cost.Pages(), 333, []goldenRow{
		{20, 0x4028e4b039f595e0, 0x40335eb3937ffdba},
		{53, 0x403424139c8027f6, 0x403842bd91238e67},
		{47, 0x4042a6dd4f369057, 0x4042a6dd4f369057},
		{37, 0x40432d6bfc49d156, 0x40432d6bfc49d156},
		{15, 0x4043b3b92d299617, 0x4043b3b92d299617},
	})

	// The epoch stamped on every result is the quiesced store's: 0.
	if mr3.Epoch != 0 || ea.Epoch != 0 || rng.Epoch != 0 {
		t.Errorf("quiesced results carry epochs %d/%d/%d, want 0", mr3.Epoch, ea.Epoch, rng.Epoch)
	}
}

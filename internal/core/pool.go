package core

import "sync"

// sessionPool is the free list behind AcquireSession/Release: a
// mutex-guarded stack of idle sessions. It exists for callers that check
// sessions in and out per unit of work (the HTTP serving layer checks one
// out per request) rather than pinning one session per long-lived worker
// goroutine. Reuse matters because a Session carries a pathnet Querier
// whose Dijkstra scratch (epoch-stamped distance/visited arrays sized to
// the pathnet) is expensive to allocate compared to one query's work.
//
// The list only ever grows to the peak number of concurrently checked-out
// sessions, which the serving layer already bounds with admission control,
// so no eviction policy is needed.
type sessionPool struct {
	mu   sync.Mutex
	free []*Session
}

// AcquireSession checks an idle session out of the database's session pool,
// creating a fresh one when the pool is empty. The session's default
// context is context.Background(); per-request deadlines belong in the
// *Ctx query variants, not stored in the session. Pair every acquire with
// Release — an unreleased session is not leaked (it is just garbage), but
// its scratch allocations are lost to future requests.
//
// Like every Session, a pooled session is owned by one goroutine between
// Acquire and Release.
func (db *TerrainDB) AcquireSession() *Session {
	p := &db.sessions
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return s
	}
	p.mu.Unlock()
	return db.NewSession(nil)
}

// Release returns a session obtained from AcquireSession to the pool. The
// session's per-query accounting is reset by the next query's beginQuery;
// the settings a caller may have flipped (tracing) are cleared here so one
// request's debugging never leaks into another's. Releasing nil is a no-op;
// a released session must not be used again until re-acquired.
func (db *TerrainDB) Release(s *Session) {
	if s == nil {
		return
	}
	s.tracing = false
	p := &db.sessions
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

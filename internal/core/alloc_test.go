package core

import (
	"testing"

	"surfknn/internal/dem"
)

// TestWarmSessionKNNAllocFree pins the flat-buffer refactor's core promise:
// a warm Session (scratch at its high-water mark, uninstrumented database,
// tracing off) answers MR3 queries without a single heap allocation. Any
// regression — a fresh closure, a map, an append past capacity on the query
// path — shows up here as a non-zero count.
func TestWarmSessionKNNAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	db := buildDB(t, dem.BH, 16, 60, 2006)
	qs := queryPoints(t, db, 4, 77)
	s := db.NewSession(nil)
	// Warm-up: let every retained buffer (candidate slab, CSR scratch,
	// SDN chain DP, fetch id lists, phase slice) reach its final size.
	for _, q := range qs {
		if _, err := s.MR3(q, 5, S2, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	qi := 0
	if n := testing.AllocsPerRun(20, func() {
		if _, err := s.MR3(qs[qi%len(qs)], 5, S2, Options{}); err != nil {
			t.Fatal(err)
		}
		qi++
	}); n != 0 {
		t.Fatalf("warm Session MR3 allocates %.1f times per query, want 0", n)
	}
}

// TestWarmSessionRangeAllocFree is the same guard for the surface range
// query, which shares the ranker and fetch scratch with MR3.
func TestWarmSessionRangeAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	db := buildDB(t, dem.BH, 16, 60, 2006)
	qs := queryPoints(t, db, 4, 77)
	s := db.NewSession(nil)
	radius := 250.0
	for _, q := range qs {
		if _, err := s.SurfaceRange(q, radius, S2, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	qi := 0
	if n := testing.AllocsPerRun(20, func() {
		if _, err := s.SurfaceRange(qs[qi%len(qs)], radius, S2, Options{}); err != nil {
			t.Fatal(err)
		}
		qi++
	}); n != 0 {
		t.Fatalf("warm Session SurfaceRange allocates %.1f times per query, want 0", n)
	}
}

package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"surfknn/internal/geom"
	"surfknn/internal/graph"
	"surfknn/internal/index"
	"surfknn/internal/mesh"
	"surfknn/internal/multires"
	"surfknn/internal/objstore"
	"surfknn/internal/pathnet"
	"surfknn/internal/sdn"
	"surfknn/internal/workload"
)

// ErrBadSnapshot marks structural-validation failures while loading a
// snapshot (bad magic, implausible counts, inconsistent tree shape) as
// opposed to plain read errors. Callers distinguish a corrupt file from a
// truncated stream with errors.Is(err, core.ErrBadSnapshot).
var ErrBadSnapshot = errors.New("bad snapshot")

// Persistence: a TerrainDB snapshot holds the mesh, the DDM tree, the MSDN
// and (optionally) the object set. All integers and floats are
// little-endian; the format is versioned, and the body is followed by a
// CRC-32C footer so a flipped bit in float payload (which no structural
// check can see) fails loudly instead of skewing every distance bound
// computed from the loaded structures.
//
// Format v4 appends the query-time flat buffers — the pathnet (CSR graph,
// vertex positions, face-point lists) and the object Dxy R-tree (node and
// item slabs) — so loading is a straight read into the SoA layout instead of
// re-running the Steiner subdivision and the STR bulk pack. v3 (which
// rebuilt both) is still readable; the paged stores remain deterministic
// derivations rebuilt on every load.

// Format v3 added the object-store epoch number to the objects section, so
// a restarted server resumes the version sequence where the snapshot left
// it. v2 snapshots are not readable (regenerate with skgen -db).
var (
	dbMagic   = [8]byte{'S', 'K', 'N', 'N', 'D', 'B', '0', '4'}
	dbMagicV3 = [8]byte{'S', 'K', 'N', 'N', 'D', 'B', '0', '3'}
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type persistWriter struct {
	w   *bufio.Writer
	crc uint32
	err error
	buf [8]byte
}

// write sends raw bytes and folds them into the running checksum.
func (p *persistWriter) write(b []byte) {
	if p.err != nil {
		return
	}
	if _, err := p.w.Write(b); err != nil {
		p.err = err
		return
	}
	p.crc = crc32.Update(p.crc, crcTable, b)
}

func (p *persistWriter) u8(v uint8) {
	p.buf[0] = v
	p.write(p.buf[:1])
}
func (p *persistWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(p.buf[:4], v)
	p.write(p.buf[:4])
}
func (p *persistWriter) i32(v int32) { p.u32(uint32(v)) }
func (p *persistWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(p.buf[:8], v)
	p.write(p.buf[:8])
}
func (p *persistWriter) f64(v float64) { p.u64(math.Float64bits(v)) }
func (p *persistWriter) vec3(v geom.Vec3) {
	p.f64(v.X)
	p.f64(v.Y)
	p.f64(v.Z)
}
func (p *persistWriter) mbr(m geom.MBR) {
	p.f64(m.MinX)
	p.f64(m.MinY)
	p.f64(m.MaxX)
	p.f64(m.MaxY)
}

type persistReader struct {
	r   *bufio.Reader
	crc uint32
	err error
	buf [8]byte
}

// read fills b and folds it into the running checksum; the final footer is
// read outside this path so it does not hash itself.
func (p *persistReader) read(b []byte) bool {
	if p.err != nil {
		return false
	}
	if _, err := io.ReadFull(p.r, b); err != nil {
		p.err = err
		return false
	}
	p.crc = crc32.Update(p.crc, crcTable, b)
	return true
}

func (p *persistReader) u8() uint8 {
	if !p.read(p.buf[:1]) {
		return 0
	}
	return p.buf[0]
}
func (p *persistReader) u32() uint32 {
	if !p.read(p.buf[:4]) {
		return 0
	}
	return binary.LittleEndian.Uint32(p.buf[:4])
}
func (p *persistReader) i32() int32 { return int32(p.u32()) }
func (p *persistReader) u64() uint64 {
	if !p.read(p.buf[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(p.buf[:8])
}
func (p *persistReader) f64() float64 { return math.Float64frombits(p.u64()) }
func (p *persistReader) vec3() geom.Vec3 {
	return geom.Vec3{X: p.f64(), Y: p.f64(), Z: p.f64()}
}
func (p *persistReader) mbr() geom.MBR {
	return geom.MBR{MinX: p.f64(), MinY: p.f64(), MaxX: p.f64(), MaxY: p.f64()}
}

// clampCap bounds the initial capacity of count-prefixed slices read from
// untrusted snapshots: the slice still grows to the true count via append,
// but a forged header can no longer demand gigabytes up front.
func clampCap(n int) int {
	const maxInitial = 1 << 16
	if n > maxInitial {
		return maxInitial
	}
	return n
}

// Save writes a snapshot of the terrain database (including the installed
// objects, if any) to w in the current (v4) format.
func (db *TerrainDB) Save(w io.Writer) error {
	objs, epoch, dxy := db.snapshotObjects()
	return db.save(w, true, objs, epoch, dxy)
}

// SaveWithObjects writes a v4 snapshot whose object section holds exactly
// objs at the given epoch in place of the database's installed object set.
// This is the shard tiler's primitive: the shared terrain structures are
// re-emitted per tile with only that tile's object partition, without ever
// copying or mutating the source TerrainDB. The Dxy buffers are bulk-packed
// over objs in slice order, so loading the shard reproduces NewAt(objs,
// epoch) bit for bit.
func (db *TerrainDB) SaveWithObjects(w io.Writer, objs []workload.Object, epoch uint64) error {
	items := make([]index.Item, len(objs))
	for i, o := range objs {
		items[i] = index.Item{P: o.Point.XY(), ID: o.ID}
	}
	return db.save(w, true, objs, epoch, index.Bulk(items).Flatten())
}

// saveV3 writes the previous snapshot format, which omits the flat query
// buffers. Kept (unexported) so the backward-compatibility test exercises
// the v3 reader against a genuine v3 byte stream.
func (db *TerrainDB) saveV3(w io.Writer) error {
	objs, epoch, dxy := db.snapshotObjects()
	return db.save(w, false, objs, epoch, dxy)
}

// snapshotObjects captures the installed object set — epoch number, table
// and packed Dxy buffers — under one pin, so a save racing concurrent
// updates still writes one consistent version.
func (db *TerrainDB) snapshotObjects() ([]workload.Object, uint64, index.Flat) {
	if db.store == nil {
		return nil, 0, index.Flat{}
	}
	e := db.store.Pin()
	epoch := e.Seq()
	objs := e.Table()
	dxy := e.IndexFlat()
	e.Release() // Table()/IndexFlat() snapshot immutable state; safe after release
	return objs, epoch, dxy
}

func (db *TerrainDB) save(w io.Writer, v4 bool, objs []workload.Object, epoch uint64, dxy index.Flat) error {
	pw := &persistWriter{w: bufio.NewWriter(w)}
	if v4 {
		pw.write(dbMagic[:])
	} else {
		pw.write(dbMagicV3[:])
	}

	// Mesh.
	m := db.Mesh
	pw.u32(uint32(m.NumVerts()))
	for _, v := range m.Verts {
		pw.vec3(v)
	}
	pw.u32(uint32(m.NumFaces()))
	for _, f := range m.Faces {
		pw.i32(int32(f[0]))
		pw.i32(int32(f[1]))
		pw.i32(int32(f[2]))
	}

	// DDM tree.
	t := db.Tree
	pw.u32(uint32(t.NumLeaves))
	pw.u32(uint32(len(t.Nodes)))
	for _, n := range t.Nodes {
		pw.i32(int32(n.Parent))
		pw.i32(int32(n.Left))
		pw.i32(int32(n.Right))
		pw.f64(n.Error)
		pw.i32(int32(n.Rep))
		pw.vec3(n.RepPos)
		pw.vec3(n.Pos)
		pw.f64(n.Gather)
		pw.i32(n.Birth)
		pw.i32(n.Death)
		pw.mbr(n.MBR)
	}
	pw.u32(uint32(len(t.Edges)))
	for _, e := range t.Edges {
		pw.i32(int32(e.U))
		pw.i32(int32(e.W))
		pw.f64(e.D)
		pw.i32(e.Birth)
		pw.i32(e.Death)
	}

	// MSDN.
	pw.f64(db.MSDN.Spacing)
	for _, fam := range [][]*sdn.CrossLine{db.MSDN.XLines, db.MSDN.YLines} {
		pw.u32(uint32(len(fam)))
		for _, cl := range fam {
			pw.u32(uint32(cl.Axis))
			pw.f64(cl.Coord)
			pw.u32(uint32(len(cl.Pts)))
			for i, pt := range cl.Pts {
				pw.vec3(pt)
				pw.u32(uint32(cl.Rank[i]))
			}
		}
	}

	// Objects: the epoch number, table and (v4) Dxy index buffers supplied
	// by the caller (Save/SaveWithObjects).
	pw.u64(epoch)
	pw.u32(uint32(len(objs)))
	for _, o := range objs {
		pw.u64(uint64(o.ID))
		pw.vec3(o.Point.Pos)
		pw.i32(int32(o.Point.Face))
	}

	if v4 {
		// Pathnet flat buffers: CSR offsets and arcs, vertex positions, the
		// Steiner level and the face→point CSR pair.
		pf := db.Path.Flatten()
		pw.u32(uint32(len(pf.Off)))
		for _, v := range pf.Off {
			pw.i32(v)
		}
		pw.u32(uint32(len(pf.Arcs)))
		for _, a := range pf.Arcs {
			pw.i32(a.To)
			pw.f64(a.W)
		}
		pw.u32(uint32(len(pf.Pos)))
		for _, v := range pf.Pos {
			pw.vec3(v)
		}
		pw.u32(uint32(pf.Steiner))
		pw.u32(uint32(len(pf.FaceOff)))
		for _, v := range pf.FaceOff {
			pw.i32(v)
		}
		pw.u32(uint32(len(pf.FacePts)))
		for _, v := range pf.FacePts {
			pw.i32(v)
		}

		// Dxy R-tree flat buffers: the four node-parallel arrays interleaved
		// per node, then the item slab. Empty when no objects are installed.
		pw.u32(uint32(len(dxy.Leaf)))
		for i := range dxy.Leaf {
			var leaf uint8
			if dxy.Leaf[i] {
				leaf = 1
			}
			pw.u8(leaf)
			pw.mbr(dxy.MBR[i])
			pw.i32(dxy.Start[i])
			pw.i32(dxy.Count[i])
		}
		pw.u32(uint32(len(dxy.Items)))
		for _, it := range dxy.Items {
			pw.f64(it.P.X)
			pw.f64(it.P.Y)
			pw.u64(uint64(it.ID))
		}
	}

	if pw.err != nil {
		return fmt.Errorf("core: save: %w", pw.err)
	}
	// Integrity footer: CRC-32C over everything written above (the footer
	// itself is excluded).
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], pw.crc)
	if _, err := pw.w.Write(sum[:]); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return pw.w.Flush()
}

// Load reconstructs a terrain database from a snapshot. cfg provides the
// runtime knobs (pool size, page cost, Steiner level) exactly as for
// BuildTerrainDB; the derived structures are rebuilt deterministically.
func Load(r io.Reader, cfg Config) (*TerrainDB, error) {
	cfg = cfg.withDefaults()
	pr := &persistReader{r: bufio.NewReader(r)}
	var magic [8]byte
	if !pr.read(magic[:]) {
		return nil, fmt.Errorf("core: load: %w", pr.err)
	}
	v4 := magic == dbMagic
	if !v4 && magic != dbMagicV3 {
		return nil, fmt.Errorf("core: load: %w: magic %q", ErrBadSnapshot, magic)
	}

	// Counts are read from untrusted input: validate them against
	// plausibility caps, and grow slices incrementally with a bounded
	// initial capacity so a forged header cannot demand a huge allocation
	// before the stream runs dry (each loop bails on the first read error).

	// Mesh.
	nv := int(pr.u32())
	if pr.err != nil {
		return nil, fmt.Errorf("core: load: vertex count: %w", pr.err)
	}
	if nv < 3 || nv > 1<<28 {
		return nil, fmt.Errorf("core: load: %w: implausible vertex count %d", ErrBadSnapshot, nv)
	}
	verts := make([]geom.Vec3, 0, clampCap(nv))
	for i := 0; i < nv; i++ {
		verts = append(verts, pr.vec3())
		if pr.err != nil {
			return nil, fmt.Errorf("core: load: vertices: %w", pr.err)
		}
	}
	nf := int(pr.u32())
	if pr.err != nil {
		return nil, fmt.Errorf("core: load: face count: %w", pr.err)
	}
	if nf < 1 || nf > 1<<29 {
		return nil, fmt.Errorf("core: load: %w: implausible face count %d", ErrBadSnapshot, nf)
	}
	faces := make([][3]mesh.VertexID, 0, clampCap(nf))
	for i := 0; i < nf; i++ {
		faces = append(faces, [3]mesh.VertexID{
			mesh.VertexID(pr.i32()), mesh.VertexID(pr.i32()), mesh.VertexID(pr.i32()),
		})
		if pr.err != nil {
			return nil, fmt.Errorf("core: load: faces: %w", pr.err)
		}
	}
	for _, f := range faces {
		for _, v := range f {
			if int(v) < 0 || int(v) >= nv {
				return nil, fmt.Errorf("core: load: %w: face vertex %d outside [0,%d)", ErrBadSnapshot, v, nv)
			}
		}
	}
	m := mesh.New(verts, faces)

	// DDM tree.
	tree := &multires.Tree{NumLeaves: int(pr.u32())}
	nn := int(pr.u32())
	if pr.err != nil {
		return nil, fmt.Errorf("core: load: tree header: %w", pr.err)
	}
	if tree.NumLeaves < 1 || tree.NumLeaves > 1<<28 || nn != 2*tree.NumLeaves-1 {
		return nil, fmt.Errorf("core: load: %w: node count %d for %d leaves", ErrBadSnapshot, nn, tree.NumLeaves)
	}
	tree.Nodes = make([]multires.Node, 0, clampCap(nn))
	for i := 0; i < nn; i++ {
		tree.Nodes = append(tree.Nodes, multires.Node{
			Parent: multires.NodeID(pr.i32()),
			Left:   multires.NodeID(pr.i32()),
			Right:  multires.NodeID(pr.i32()),
			Error:  pr.f64(),
			Rep:    mesh.VertexID(pr.i32()),
			RepPos: pr.vec3(),
			Pos:    pr.vec3(),
			Gather: pr.f64(),
			Birth:  pr.i32(),
			Death:  pr.i32(),
			MBR:    pr.mbr(),
		})
		if pr.err != nil {
			return nil, fmt.Errorf("core: load: tree nodes: %w", pr.err)
		}
	}
	ne := int(pr.u32())
	if pr.err != nil {
		return nil, fmt.Errorf("core: load: edge count: %w", pr.err)
	}
	if ne < 0 || ne > 1<<29 {
		return nil, fmt.Errorf("core: load: %w: implausible edge count %d", ErrBadSnapshot, ne)
	}
	tree.Edges = make([]multires.EdgeRec, 0, clampCap(ne))
	for i := 0; i < ne; i++ {
		tree.Edges = append(tree.Edges, multires.EdgeRec{
			U:     multires.NodeID(pr.i32()),
			W:     multires.NodeID(pr.i32()),
			D:     pr.f64(),
			Birth: pr.i32(),
			Death: pr.i32(),
		})
		if pr.err != nil {
			return nil, fmt.Errorf("core: load: tree edges: %w", pr.err)
		}
	}
	tree.SetMaxTime(int32(tree.NumLeaves - 1))
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("core: load: %w: %v", ErrBadSnapshot, err)
	}

	// MSDN.
	ms := &sdn.MSDN{Spacing: pr.f64()}
	for fam := 0; fam < 2; fam++ {
		count := int(pr.u32())
		if pr.err != nil {
			return nil, fmt.Errorf("core: load: MSDN header: %w", pr.err)
		}
		if count < 0 || count > 1<<24 {
			return nil, fmt.Errorf("core: load: %w: implausible line count %d", ErrBadSnapshot, count)
		}
		lines := make([]*sdn.CrossLine, 0, clampCap(count))
		for li := 0; li < count; li++ {
			cl := &sdn.CrossLine{
				Axis:  sdn.Axis(pr.u32()),
				Coord: pr.f64(),
			}
			np := int(pr.u32())
			if pr.err != nil {
				return nil, fmt.Errorf("core: load: cross-line header: %w", pr.err)
			}
			if np < 0 || np > 1<<26 {
				return nil, fmt.Errorf("core: load: %w: implausible line size %d", ErrBadSnapshot, np)
			}
			cl.Pts = make([]geom.Vec3, 0, clampCap(np))
			cl.Rank = make([]int, 0, clampCap(np))
			for i := 0; i < np; i++ {
				cl.Pts = append(cl.Pts, pr.vec3())
				cl.Rank = append(cl.Rank, int(pr.u32()))
				if pr.err != nil {
					return nil, fmt.Errorf("core: load: cross-line points: %w", pr.err)
				}
			}
			lines = append(lines, cl)
		}
		if fam == 0 {
			ms.XLines = lines
		} else {
			ms.YLines = lines
		}
	}

	// Objects.
	epoch := pr.u64()
	nObj := int(pr.u32())
	if pr.err != nil {
		return nil, fmt.Errorf("core: load: object count: %w", pr.err)
	}
	if nObj < 0 || nObj > 1<<28 {
		return nil, fmt.Errorf("core: load: %w: implausible object count %d", ErrBadSnapshot, nObj)
	}
	var objs []workload.Object
	for i := 0; i < nObj; i++ {
		objs = append(objs, workload.Object{
			ID: int64(pr.u64()),
			Point: mesh.SurfacePoint{
				Pos:  pr.vec3(),
				Face: mesh.FaceID(pr.i32()),
			},
		})
		if pr.err != nil {
			return nil, fmt.Errorf("core: load: objects: %w", pr.err)
		}
		if f := int(objs[i].Point.Face); f < 0 || f >= nf {
			return nil, fmt.Errorf("core: load: %w: object face %d outside [0,%d)", ErrBadSnapshot, f, nf)
		}
	}

	// v4 tail: the pathnet and Dxy flat buffers.
	var (
		path *pathnet.Pathnet
		dxy  index.Flat
	)
	if v4 {
		var pf pathnet.Flat
		var err error
		if pf, err = loadPathnetFlat(pr, nf); err != nil {
			return nil, err
		}
		if dxy, err = loadIndexFlat(pr, nObj); err != nil {
			return nil, err
		}
		path = pathnet.FromFlat(m, pf)
	}

	// Integrity footer: the stored CRC-32C must match everything read
	// above. Structural checks cannot see a flipped bit inside a float
	// payload; this can.
	want := pr.crc
	var sum [4]byte
	if _, err := io.ReadFull(pr.r, sum[:]); err != nil {
		return nil, fmt.Errorf("core: load: checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("core: load: %w: checksum mismatch (stored %08x, computed %08x)", ErrBadSnapshot, got, want)
	}

	db, err := assembleTerrainDB(m, tree, ms, path, cfg)
	if err != nil {
		return nil, err
	}
	if !v4 {
		db.formatVersion = 3
	}
	// Restore the object store at the saved epoch. A non-zero epoch with an
	// empty table is legitimate (everything was deleted); only a snapshot
	// that never had objects leaves the store uninstalled. A v4 snapshot
	// carries the packed Dxy buffers, so the restore skips the STR bulk pack.
	if nObj > 0 || epoch > 0 {
		if v4 {
			db.store = objstore.NewAtWithIndex(objs, epoch, dxy)
		} else {
			db.SetObjectsAt(objs, epoch)
		}
	}
	return db, nil
}

// loadPathnetFlat reads the v4 pathnet section, validating every index
// against the buffers it points into. nf is the mesh face count (bounds the
// face-point CSR).
func loadPathnetFlat(pr *persistReader, nf int) (pathnet.Flat, error) {
	var pf pathnet.Flat
	bad := func(format string, args ...any) (pathnet.Flat, error) {
		return pf, fmt.Errorf("core: load: %w: "+format, append([]any{ErrBadSnapshot}, args...)...)
	}

	nOff := int(pr.u32())
	if pr.err != nil {
		return pf, fmt.Errorf("core: load: pathnet header: %w", pr.err)
	}
	if nOff < 1 || nOff > 1<<28 {
		return bad("implausible pathnet offset count %d", nOff)
	}
	pf.Off = make([]int32, 0, clampCap(nOff))
	for i := 0; i < nOff; i++ {
		pf.Off = append(pf.Off, pr.i32())
		if pr.err != nil {
			return pf, fmt.Errorf("core: load: pathnet offsets: %w", pr.err)
		}
	}
	nArcs := int(pr.u32())
	if pr.err != nil {
		return pf, fmt.Errorf("core: load: pathnet arc count: %w", pr.err)
	}
	if nArcs < 0 || nArcs > 1<<30 {
		return bad("implausible pathnet arc count %d", nArcs)
	}
	pf.Arcs = make([]graph.Arc, 0, clampCap(nArcs))
	for i := 0; i < nArcs; i++ {
		pf.Arcs = append(pf.Arcs, graph.Arc{To: pr.i32(), W: pr.f64()})
		if pr.err != nil {
			return pf, fmt.Errorf("core: load: pathnet arcs: %w", pr.err)
		}
	}
	nPos := int(pr.u32())
	if pr.err != nil {
		return pf, fmt.Errorf("core: load: pathnet position count: %w", pr.err)
	}
	if nPos != nOff-1 {
		return bad("pathnet has %d positions for %d offsets", nPos, nOff)
	}
	pf.Pos = make([]geom.Vec3, 0, clampCap(nPos))
	for i := 0; i < nPos; i++ {
		pf.Pos = append(pf.Pos, pr.vec3())
		if pr.err != nil {
			return pf, fmt.Errorf("core: load: pathnet positions: %w", pr.err)
		}
	}
	pf.Steiner = int(pr.u32())

	// CSR shape: offsets must be a monotone cover of the arc slab, and every
	// arc endpoint must be a vertex.
	if int(pf.Off[0]) != 0 || int(pf.Off[nOff-1]) != nArcs {
		return bad("pathnet offsets do not cover %d arcs", nArcs)
	}
	for i := 1; i < nOff; i++ {
		if pf.Off[i] < pf.Off[i-1] {
			return bad("pathnet offsets not monotone at %d", i)
		}
	}
	for _, a := range pf.Arcs {
		if int(a.To) < 0 || int(a.To) >= nPos {
			return bad("pathnet arc to vertex %d outside [0,%d)", a.To, nPos)
		}
	}

	nFaceOff := int(pr.u32())
	if pr.err != nil {
		return pf, fmt.Errorf("core: load: face-point header: %w", pr.err)
	}
	if nFaceOff != nf+1 {
		return bad("face-point offset count %d for %d faces", nFaceOff, nf)
	}
	pf.FaceOff = make([]int32, 0, clampCap(nFaceOff))
	for i := 0; i < nFaceOff; i++ {
		pf.FaceOff = append(pf.FaceOff, pr.i32())
		if pr.err != nil {
			return pf, fmt.Errorf("core: load: face-point offsets: %w", pr.err)
		}
	}
	nFacePts := int(pr.u32())
	if pr.err != nil {
		return pf, fmt.Errorf("core: load: face-point count: %w", pr.err)
	}
	if nFacePts < 0 || nFacePts > 1<<30 {
		return bad("implausible face-point count %d", nFacePts)
	}
	pf.FacePts = make([]int32, 0, clampCap(nFacePts))
	for i := 0; i < nFacePts; i++ {
		pf.FacePts = append(pf.FacePts, pr.i32())
		if pr.err != nil {
			return pf, fmt.Errorf("core: load: face points: %w", pr.err)
		}
	}
	if int(pf.FaceOff[0]) != 0 || int(pf.FaceOff[nFaceOff-1]) != nFacePts {
		return bad("face-point offsets do not cover %d points", nFacePts)
	}
	for i := 1; i < nFaceOff; i++ {
		if pf.FaceOff[i] < pf.FaceOff[i-1] {
			return bad("face-point offsets not monotone at %d", i)
		}
	}
	for _, v := range pf.FacePts {
		if int(v) < 0 || int(v) >= nPos {
			return bad("face point %d outside [0,%d)", v, nPos)
		}
	}
	return pf, nil
}

// loadIndexFlat reads the v4 Dxy R-tree section. nObj is the object count
// read earlier; the item slab must index exactly that set.
func loadIndexFlat(pr *persistReader, nObj int) (index.Flat, error) {
	var f index.Flat
	bad := func(format string, args ...any) (index.Flat, error) {
		return f, fmt.Errorf("core: load: %w: "+format, append([]any{ErrBadSnapshot}, args...)...)
	}

	nNodes := int(pr.u32())
	if pr.err != nil {
		return f, fmt.Errorf("core: load: index header: %w", pr.err)
	}
	if nNodes < 0 || nNodes > 1<<28 {
		return bad("implausible index node count %d", nNodes)
	}
	f.Leaf = make([]bool, 0, clampCap(nNodes))
	f.MBR = make([]geom.MBR, 0, clampCap(nNodes))
	f.Start = make([]int32, 0, clampCap(nNodes))
	f.Count = make([]int32, 0, clampCap(nNodes))
	for i := 0; i < nNodes; i++ {
		f.Leaf = append(f.Leaf, pr.u8() != 0)
		f.MBR = append(f.MBR, pr.mbr())
		f.Start = append(f.Start, pr.i32())
		f.Count = append(f.Count, pr.i32())
		if pr.err != nil {
			return f, fmt.Errorf("core: load: index nodes: %w", pr.err)
		}
	}
	nItems := int(pr.u32())
	if pr.err != nil {
		return f, fmt.Errorf("core: load: index item count: %w", pr.err)
	}
	if nItems != nObj {
		return bad("index holds %d items for %d objects", nItems, nObj)
	}
	f.Items = make([]index.Item, 0, clampCap(nItems))
	for i := 0; i < nItems; i++ {
		f.Items = append(f.Items, index.Item{
			P:  geom.Vec2{X: pr.f64(), Y: pr.f64()},
			ID: int64(pr.u64()),
		})
		if pr.err != nil {
			return f, fmt.Errorf("core: load: index items: %w", pr.err)
		}
	}
	if nItems > 0 && nNodes == 0 {
		return bad("index has items but no nodes")
	}
	// Every node's child/item range must stay inside the slab it points into
	// (children for internal nodes, items for leaves).
	for i := 0; i < nNodes; i++ {
		start, count := int(f.Start[i]), int(f.Count[i])
		limit := nNodes
		if f.Leaf[i] {
			limit = nItems
		}
		if start < 0 || count < 0 || start+count > limit {
			return bad("index node %d range [%d,%d) outside slab of %d", i, start, start+count, limit)
		}
	}
	return f, nil
}

// SaveFile writes the snapshot to the named file.
func (db *TerrainDB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := db.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a snapshot from the named file.
func LoadFile(path string, cfg Config) (*TerrainDB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return Load(f, cfg)
}

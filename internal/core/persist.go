package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/multires"
	"surfknn/internal/sdn"
	"surfknn/internal/workload"
)

// Persistence: a TerrainDB snapshot holds the mesh, the DDM tree, the MSDN
// and (optionally) the object set. The pathnet and the paged stores are
// deterministic derivations and are rebuilt on load, which keeps snapshots
// compact while reproducing identical query behaviour. All integers and
// floats are little-endian; the format is versioned.

var dbMagic = [8]byte{'S', 'K', 'N', 'N', 'D', 'B', '0', '1'}

type persistWriter struct {
	w   *bufio.Writer
	err error
}

func (p *persistWriter) u32(v uint32) {
	if p.err == nil {
		p.err = binary.Write(p.w, binary.LittleEndian, v)
	}
}
func (p *persistWriter) i32(v int32) { p.u32(uint32(v)) }
func (p *persistWriter) u64(v uint64) {
	p.err = firstErr(p.err, binary.Write(p.w, binary.LittleEndian, v))
}
func (p *persistWriter) f64(v float64) { p.u64(math.Float64bits(v)) }
func (p *persistWriter) vec3(v geom.Vec3) {
	p.f64(v.X)
	p.f64(v.Y)
	p.f64(v.Z)
}
func (p *persistWriter) mbr(m geom.MBR) {
	p.f64(m.MinX)
	p.f64(m.MinY)
	p.f64(m.MaxX)
	p.f64(m.MaxY)
}

type persistReader struct {
	r   *bufio.Reader
	err error
}

func (p *persistReader) u32() uint32 {
	var v uint32
	if p.err == nil {
		p.err = binary.Read(p.r, binary.LittleEndian, &v)
	}
	return v
}
func (p *persistReader) i32() int32 { return int32(p.u32()) }
func (p *persistReader) u64() uint64 {
	var v uint64
	if p.err == nil {
		p.err = binary.Read(p.r, binary.LittleEndian, &v)
	}
	return v
}
func (p *persistReader) f64() float64 { return math.Float64frombits(p.u64()) }
func (p *persistReader) vec3() geom.Vec3 {
	return geom.Vec3{X: p.f64(), Y: p.f64(), Z: p.f64()}
}
func (p *persistReader) mbr() geom.MBR {
	return geom.MBR{MinX: p.f64(), MinY: p.f64(), MaxX: p.f64(), MaxY: p.f64()}
}

func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// Save writes a snapshot of the terrain database (including the installed
// objects, if any) to w.
func (db *TerrainDB) Save(w io.Writer) error {
	pw := &persistWriter{w: bufio.NewWriter(w)}
	if _, err := pw.w.Write(dbMagic[:]); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}

	// Mesh.
	m := db.Mesh
	pw.u32(uint32(m.NumVerts()))
	for _, v := range m.Verts {
		pw.vec3(v)
	}
	pw.u32(uint32(m.NumFaces()))
	for _, f := range m.Faces {
		pw.i32(int32(f[0]))
		pw.i32(int32(f[1]))
		pw.i32(int32(f[2]))
	}

	// DDM tree.
	t := db.Tree
	pw.u32(uint32(t.NumLeaves))
	pw.u32(uint32(len(t.Nodes)))
	for _, n := range t.Nodes {
		pw.i32(int32(n.Parent))
		pw.i32(int32(n.Left))
		pw.i32(int32(n.Right))
		pw.f64(n.Error)
		pw.i32(int32(n.Rep))
		pw.vec3(n.RepPos)
		pw.vec3(n.Pos)
		pw.f64(n.Gather)
		pw.i32(n.Birth)
		pw.i32(n.Death)
		pw.mbr(n.MBR)
	}
	pw.u32(uint32(len(t.Edges)))
	for _, e := range t.Edges {
		pw.i32(int32(e.U))
		pw.i32(int32(e.W))
		pw.f64(e.D)
		pw.i32(e.Birth)
		pw.i32(e.Death)
	}

	// MSDN.
	pw.f64(db.MSDN.Spacing)
	for _, fam := range [][]*sdn.CrossLine{db.MSDN.XLines, db.MSDN.YLines} {
		pw.u32(uint32(len(fam)))
		for _, cl := range fam {
			pw.u32(uint32(cl.Axis))
			pw.f64(cl.Coord)
			pw.u32(uint32(len(cl.Pts)))
			for i, pt := range cl.Pts {
				pw.vec3(pt)
				pw.u32(uint32(cl.Rank[i]))
			}
		}
	}

	// Objects.
	pw.u32(uint32(len(db.objects)))
	for _, o := range db.objects {
		pw.u64(uint64(o.ID))
		pw.vec3(o.Point.Pos)
		pw.i32(int32(o.Point.Face))
	}

	if pw.err != nil {
		return fmt.Errorf("core: save: %w", pw.err)
	}
	return pw.w.Flush()
}

// Load reconstructs a terrain database from a snapshot. cfg provides the
// runtime knobs (pool size, page cost, Steiner level) exactly as for
// BuildTerrainDB; the derived structures are rebuilt deterministically.
func Load(r io.Reader, cfg Config) (*TerrainDB, error) {
	cfg = cfg.withDefaults()
	pr := &persistReader{r: bufio.NewReader(r)}
	var magic [8]byte
	if _, err := io.ReadFull(pr.r, magic[:]); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if magic != dbMagic {
		return nil, fmt.Errorf("core: load: bad magic %q", magic)
	}

	// Mesh.
	nv := int(pr.u32())
	if pr.err != nil || nv < 3 || nv > 1<<28 {
		return nil, fmt.Errorf("core: load: implausible vertex count %d (%v)", nv, pr.err)
	}
	verts := make([]geom.Vec3, nv)
	for i := range verts {
		verts[i] = pr.vec3()
	}
	nf := int(pr.u32())
	if pr.err != nil || nf < 1 || nf > 1<<29 {
		return nil, fmt.Errorf("core: load: implausible face count %d (%v)", nf, pr.err)
	}
	faces := make([][3]mesh.VertexID, nf)
	for i := range faces {
		faces[i] = [3]mesh.VertexID{
			mesh.VertexID(pr.i32()), mesh.VertexID(pr.i32()), mesh.VertexID(pr.i32()),
		}
	}
	m := mesh.New(verts, faces)

	// DDM tree.
	tree := &multires.Tree{NumLeaves: int(pr.u32())}
	nn := int(pr.u32())
	if pr.err != nil || nn != 2*tree.NumLeaves-1 {
		return nil, fmt.Errorf("core: load: node count %d for %d leaves (%v)", nn, tree.NumLeaves, pr.err)
	}
	tree.Nodes = make([]multires.Node, nn)
	for i := range tree.Nodes {
		tree.Nodes[i] = multires.Node{
			Parent: multires.NodeID(pr.i32()),
			Left:   multires.NodeID(pr.i32()),
			Right:  multires.NodeID(pr.i32()),
			Error:  pr.f64(),
			Rep:    mesh.VertexID(pr.i32()),
			RepPos: pr.vec3(),
			Pos:    pr.vec3(),
			Gather: pr.f64(),
			Birth:  pr.i32(),
			Death:  pr.i32(),
			MBR:    pr.mbr(),
		}
	}
	ne := int(pr.u32())
	tree.Edges = make([]multires.EdgeRec, ne)
	for i := range tree.Edges {
		tree.Edges[i] = multires.EdgeRec{
			U:     multires.NodeID(pr.i32()),
			W:     multires.NodeID(pr.i32()),
			D:     pr.f64(),
			Birth: pr.i32(),
			Death: pr.i32(),
		}
	}
	tree.SetMaxTime(int32(tree.NumLeaves - 1))
	if pr.err != nil {
		return nil, fmt.Errorf("core: load: tree: %w", pr.err)
	}
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}

	// MSDN.
	ms := &sdn.MSDN{Spacing: pr.f64()}
	for fam := 0; fam < 2; fam++ {
		count := int(pr.u32())
		lines := make([]*sdn.CrossLine, count)
		for li := range lines {
			cl := &sdn.CrossLine{
				Axis:  sdn.Axis(pr.u32()),
				Coord: pr.f64(),
			}
			np := int(pr.u32())
			if pr.err != nil || np > 1<<26 {
				return nil, fmt.Errorf("core: load: implausible line size %d (%v)", np, pr.err)
			}
			cl.Pts = make([]geom.Vec3, np)
			cl.Rank = make([]int, np)
			for i := 0; i < np; i++ {
				cl.Pts[i] = pr.vec3()
				cl.Rank[i] = int(pr.u32())
			}
			lines[li] = cl
		}
		if fam == 0 {
			ms.XLines = lines
		} else {
			ms.YLines = lines
		}
	}

	// Objects.
	nObj := int(pr.u32())
	var objs []workload.Object
	for i := 0; i < nObj; i++ {
		objs = append(objs, workload.Object{
			ID: int64(pr.u64()),
			Point: mesh.SurfacePoint{
				Pos:  pr.vec3(),
				Face: mesh.FaceID(pr.i32()),
			},
		})
		_ = i
	}
	if pr.err != nil {
		return nil, fmt.Errorf("core: load: %w", pr.err)
	}

	db, err := assembleTerrainDB(m, tree, ms, cfg)
	if err != nil {
		return nil, err
	}
	if len(objs) > 0 {
		db.SetObjects(objs)
	}
	return db, nil
}

// SaveFile writes the snapshot to the named file.
func (db *TerrainDB) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := db.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a snapshot from the named file.
func LoadFile(path string, cfg Config) (*TerrainDB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return Load(f, cfg)
}

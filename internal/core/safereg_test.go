package core

import (
	"math"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geom"
)

// TestSafeRegionInvariant is the golden safe-region test: for every query
// point and every k, brute-force re-querying MR3 from a polar grid of
// perturbed points inside the reported radius must return the same top-k
// IDs in the same order. This is the property the continuous-query layer's
// zero-cost hit path rests on.
func TestSafeRegionInvariant(t *testing.T) {
	for _, preset := range []dem.Preset{dem.EP, dem.BH} {
		db := buildDB(t, preset, 16, 60, 7)
		qs := queryPoints(t, db, 12, 99)
		sess := db.NewSession(nil)

		positive := 0
		var relaxations int64
		for _, q := range qs {
			for _, k := range []int{1, 3, 5} {
				res, sr, err := sess.MR3SafeCtx(nil, q, k, S1, Options{})
				if err != nil {
					t.Fatalf("MR3SafeCtx(%v, k=%d): %v", q.XY(), k, err)
				}
				relaxations += res.Cost.Total().Relaxations
				if math.IsNaN(sr.Radius) || sr.Radius < 0 {
					t.Fatalf("invalid safe radius %g at %v k=%d", sr.Radius, q.XY(), k)
				}
				if sr.Guard < sr.Radius {
					t.Fatalf("guard %g < radius %g at %v k=%d", sr.Guard, sr.Radius, q.XY(), k)
				}
				if sr.Center != q.XY() {
					t.Fatalf("center %v != query %v", sr.Center, q.XY())
				}
				if sr.Radius == 0 {
					continue
				}
				positive++

				// The baseline answer must be bit-identical to plain MR3 at
				// the same epoch — MR3Safe is MR3 plus read-only geometry.
				plain, err := db.MR3(q, k, S1, Options{})
				if err != nil {
					t.Fatal(err)
				}
				requireSameRanking(t, res.Neighbors, plain.Neighbors, "MR3Safe vs MR3")

				for _, frac := range []float64{0.35, 0.8, 0.999} {
					for step := 0; step < 8; step++ {
						angle := float64(step) * math.Pi / 4
						p := geom.Vec2{
							X: sr.Center.X + sr.Radius*frac*math.Cos(angle),
							Y: sr.Center.Y + sr.Radius*frac*math.Sin(angle),
						}
						if !sr.Contains(p) {
							t.Fatalf("perturbed point %v escaped region r=%g", p, sr.Radius)
						}
						qp, err := db.SurfacePointAt(p)
						if err != nil {
							// The radius is clamped below the face clearance,
							// so the perturbed point must stay on the surface.
							t.Fatalf("perturbed point %v left the surface: %v", p, err)
						}
						re, err := db.MR3(qp, k, S1, Options{})
						if err != nil {
							t.Fatalf("re-query at %v: %v", p, err)
						}
						requireSameRanking(t, res.Neighbors, re.Neighbors, "perturbed re-query")
					}
				}
			}
		}
		if positive == 0 {
			t.Fatal("no query produced a positive safe radius; the invariant was never exercised")
		}
		if relaxations == 0 {
			t.Fatal("Cost.Relaxations stayed 0 across all fresh queries; the relaxation accounting is broken")
		}
	}
}

func requireSameRanking(t *testing.T, want, got []Neighbor, what string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: got %d neighbours, want %d", what, len(got), len(want))
	}
	for i := range want {
		if want[i].Object.ID != got[i].Object.ID {
			t.Fatalf("%s: rank %d is object %d, want %d", what, i+1, got[i].Object.ID, want[i].Object.ID)
		}
	}
}

// TestSafeRegionGuard checks the guard geometry: the guard disc covers the
// step-3 search radius plus the move budget, and GuardMBR boxes it.
func TestSafeRegionGuard(t *testing.T) {
	db := buildDB(t, dem.EP, 8, 40, 3)
	q := queryPoints(t, db, 1, 5)[0]
	_, sr, err := db.NewSession(nil).MR3Safe(q, 3, S1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Guard <= 0 {
		t.Fatalf("guard %g must be positive for a successful query", sr.Guard)
	}
	m := sr.GuardMBR()
	for _, p := range []geom.Vec2{
		{X: sr.Center.X + sr.Guard, Y: sr.Center.Y},
		{X: sr.Center.X, Y: sr.Center.Y - sr.Guard},
	} {
		if p.X < m.MinX || p.X > m.MaxX || p.Y < m.MinY || p.Y > m.MaxY {
			t.Fatalf("guard-disc point %v outside GuardMBR %+v", p, m)
		}
	}
}

package core

// Option is a functional setting for query execution. Options built with
// NewOptions and struct-literal Options are interchangeable — the
// constructors exist because the struct encodes "unset" as the zero value,
// which makes a literal 0 for the fraction fields inexpressible without the
// negative-sentinel convention documented on the struct. The constructors
// take the value you mean: WithStep2Accuracy(0) requests a literal 0.
type Option func(*Options)

// NewOptions builds an Options value from functional settings. With no
// arguments it is equivalent to Options{} — every optimisation from the
// paper enabled, fractions at their paper defaults.
func NewOptions(opts ...Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithStep2Accuracy sets the lb/ub accuracy at which step 2 stops
// tightening the k-th neighbour's upper bound. Unlike assigning the struct
// field, the argument is taken literally: 0 means "accept any finite bound,
// no tightening" (stored as the negative sentinel the struct field needs to
// express that).
func WithStep2Accuracy(v float64) Option {
	return func(o *Options) { o.Step2Accuracy = literalFraction(v) }
}

// WithOverlapThreshold sets the minimum overlap fraction for merging I/O
// regions. The argument is taken literally: 0 means "merge any intersecting
// regions".
func WithOverlapThreshold(v float64) Option {
	return func(o *Options) { o.OverlapThreshold = literalFraction(v) }
}

// WithIOIntegration enables or disables merging of significantly
// overlapping candidate I/O regions (§4.2, Fig. 9 studies this switch).
func WithIOIntegration(on bool) Option {
	return func(o *Options) { o.DisableIOIntegration = !on }
}

// WithDummyLB enables or disables the envelope-based dummy-lower-bound
// optimisation (§4.2.2).
func WithDummyLB(on bool) Option {
	return func(o *Options) { o.DisableDummyLB = !on }
}

// WithBothFamilyLB enables estimating lower bounds with both cutting-plane
// families, keeping the larger (see Options.BothFamilyLB).
func WithBothFamilyLB(on bool) Option {
	return func(o *Options) { o.BothFamilyLB = on }
}

// literalFraction maps a literal fraction onto the struct encoding, where 0
// is the unset marker and negative values mean a literal 0.
func literalFraction(v float64) float64 {
	if v == 0 {
		return -1
	}
	return v
}

package core

import (
	"context"
	"fmt"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/stats"
	"surfknn/internal/workload"
)

// Shard primitives: the decomposed MR3 steps a scatter-gather coordinator
// drives over HTTP (see internal/shard). MR3's per-candidate lower/upper
// bounds depend only on the query point, the candidate and the terrain —
// never on the other candidates or their order (the ranker computes the
// k-th bound once per iteration from the candidate set, and fetched terrain
// is filtered per candidate region) — so the four steps split cleanly:
// the 2-D filters (steps 1 and 3) run per shard over each shard's own
// object partition, and the rankings (steps 2 and 4) run on any one shard
// holding the full terrain, over candidates gathered from all of them.
// These helpers are coordination-path code, not the annotated hot path:
// they allocate their results.

// KNN2D runs MR3 step 1 alone: the k live objects nearest to q's (x,y)
// projection in ascending planar distance, read from one pinned epoch whose
// number is returned alongside. A database with no object store (or k < 1)
// returns an empty set at epoch 0.
func (db *TerrainDB) KNN2D(q geom.Vec2, k int) ([]workload.Object, uint64) {
	if db.store == nil || k < 1 {
		return nil, db.CurrentEpoch()
	}
	e := db.store.Pin()
	defer e.Release()
	var visits int64
	items := e.KNN(q, k, &visits)
	out := make([]workload.Object, 0, len(items))
	for _, it := range items {
		if o, ok := e.Object(it.ID); ok {
			out = append(out, o)
		}
	}
	return out, e.Seq()
}

// Range2D runs MR3 step 3 alone: every live object within planar distance
// radius of q, in index traversal order, read from one pinned epoch whose
// number is returned alongside.
func (db *TerrainDB) Range2D(q geom.Vec2, radius float64) ([]workload.Object, uint64) {
	if db.store == nil || radius < 0 {
		return nil, db.CurrentEpoch()
	}
	e := db.store.Pin()
	defer e.Release()
	var visits int64
	items := e.WithinDist(q, radius, &visits)
	out := make([]workload.Object, 0, len(items))
	for _, it := range items {
		if o, ok := e.Object(it.ID); ok {
			out = append(out, o)
		}
	}
	return out, e.Seq()
}

// RankCandidatesCtx runs MR3 step 2 or 4 alone: it ranks the supplied
// candidates by surface distance to q with the multiresolution machinery,
// exactly as the corresponding phase inside MR3Ctx would — tighten=true is
// the C1 ranking (tighten the k-th upper bound), tighten=false the C2
// ranking (settle the k-set). The candidates are injected by the caller
// rather than read from this database's object store, so a shard holding
// only its own object partition can rank a candidate set gathered across
// every shard; only the terrain structures are read locally. The Result's
// Epoch is the local store's pinned epoch (informational — the candidates
// carry their own provenance).
func (s *Session) RankCandidatesCtx(ctx context.Context, q mesh.SurfacePoint, objs []workload.Object, k int, sched Schedule, opt Options, tighten bool) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	s.beginQuery(ctx, algoRank)
	// beginQuery sizes scratch for the local store; the injected candidate
	// set can be larger (it spans every shard's partition).
	s.ensureScratch(len(objs))
	phase := stats.PhaseRankC2
	if tighten {
		phase = stats.PhaseRankC1
	}
	s.beginPhase(phase)
	ns, err := s.rank(q, objs, k, sched, opt, tighten)
	return s.endQuery(algoRank, k, ns, err)
}

package core

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/workload"
)

// Native fuzz targets. CI runs each for a few seconds as a smoke pass
// (scripts/check.sh); longer local runs dig deeper:
//
//	go test ./internal/core -run='^$' -fuzz=FuzzLoadSnapshot -fuzztime=60s

// fuzzDB lazily builds one small terrain database shared by the
// query-invariant fuzz targets (building per-input would drown the fuzzer
// in setup cost).
var fuzzDB struct {
	once sync.Once
	db   *TerrainDB
	err  error
}

func getFuzzDB(t *testing.T) *TerrainDB {
	fuzzDB.once.Do(func() {
		m := mesh.FromGrid(dem.Synthesize(dem.BH, 8, 10, 42))
		db, err := BuildTerrainDB(m, Config{})
		if err != nil {
			fuzzDB.err = err
			return
		}
		objs, err := workload.RandomObjects(m, db.Loc, 12, 7)
		if err != nil {
			fuzzDB.err = err
			return
		}
		db.SetObjects(objs)
		fuzzDB.db = db
	})
	if fuzzDB.err != nil {
		t.Fatal(fuzzDB.err)
	}
	return fuzzDB.db
}

// FuzzLoadSnapshot feeds arbitrary bytes to the snapshot loader. The
// contract under fuzzing: never panic, never allocate unboundedly from a
// forged header, and either return an error or a structurally valid
// database. This is the robustness gate for the persistence layer, whose
// silent corruption would poison every bound computed from the loaded
// structures.
func FuzzLoadSnapshot(f *testing.F) {
	// Seed with a genuine snapshot so mutations explore deep parse paths.
	// A 4x4 grid keeps the seed small (~15 KB): input minimisation re-runs
	// the loader thousands of times per interesting input, so seed size
	// directly bounds fuzzing throughput.
	m := mesh.FromGrid(dem.Synthesize(dem.BH, 4, 10, 42))
	db, err := BuildTerrainDB(m, Config{})
	if err != nil {
		f.Fatal(err)
	}
	objs, err := workload.RandomObjects(m, db.Loc, 5, 7)
	if err != nil {
		f.Fatal(err)
	}
	db.SetObjects(objs)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(full[:16])
	f.Add([]byte("SKNNDB03"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Load(bytes.NewReader(data), Config{})
		if err != nil {
			return
		}
		// A snapshot the loader accepted must be structurally sound.
		if db.Mesh == nil || db.Mesh.NumVerts() < 3 {
			t.Fatalf("accepted snapshot produced invalid mesh")
		}
		if err := db.Tree.Validate(); err != nil {
			t.Fatalf("accepted snapshot fails tree validation: %v", err)
		}
	})
}

// FuzzMR3Invariants drives MR3 from fuzzer-chosen query positions and k,
// checking the paper's §4 invariants on every answer: the result has
// exactly min(k, n) entries, each range satisfies LB <= UB, results are
// ranked by UB, and the k-set agrees with brute force under the reference
// metric. This is the bound-correctness guarantee the whole pruning
// argument rests on.
func FuzzMR3Invariants(f *testing.F) {
	f.Add(0.3, 0.7, uint8(3))
	f.Add(0.0, 0.0, uint8(1))
	f.Add(0.99, 0.01, uint8(12))
	f.Fuzz(func(t *testing.T, fx, fy float64, kraw uint8) {
		db := getFuzzDB(t)
		q, ok := fuzzQueryPoint(db, fx, fy)
		if !ok {
			t.Skip("degenerate query position")
		}
		n := len(db.Objects())
		k := 1 + int(kraw)%n
		res, err := db.MR3(q, k, S2, Options{})
		if err != nil {
			t.Fatalf("MR3(%v, k=%d): %v", q.Pos, k, err)
		}
		if len(res.Neighbors) != k {
			t.Fatalf("got %d neighbours, want %d", len(res.Neighbors), k)
		}
		prev := math.Inf(-1)
		for i, nb := range res.Neighbors {
			if nb.LB > nb.UB*(1+1e-9)+1e-9 {
				t.Fatalf("neighbour %d: LB %v exceeds UB %v", i, nb.LB, nb.UB)
			}
			if nb.UB < prev {
				t.Fatalf("neighbour %d: results not ranked by UB (%v after %v)", i, nb.UB, prev)
			}
			prev = nb.UB
		}
		sameKSet(t, db, q, res.Neighbors, k)
	})
}

// FuzzDistanceRangeInvariants checks DistanceWithAccuracy's contract from
// fuzzer-chosen point pairs: the returned range brackets sanely
// (Euclidean floor <= LB <= UB) and meets the requested accuracy when it
// reports success. LB monotonicity across iterations is internal, but a
// violated ladder shows up here as LB > UB or accuracy above 1.
func FuzzDistanceRangeInvariants(f *testing.F) {
	f.Add(0.1, 0.2, 0.8, 0.9, 0.7)
	f.Add(0.5, 0.5, 0.51, 0.52, 0.95)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, acc float64) {
		db := getFuzzDB(t)
		a, okA := fuzzQueryPoint(db, ax, ay)
		b, okB := fuzzQueryPoint(db, bx, by)
		if !okA || !okB {
			t.Skip("degenerate positions")
		}
		if math.IsNaN(acc) {
			t.Skip("NaN accuracy is rejected by validation")
		}
		accuracy := 0.05 + 0.9*clamp01(acc)
		out, err := db.DistanceWithAccuracy(a, b, accuracy, S2)
		if err != nil {
			return // disconnected points are a legal error outcome
		}
		euclid := a.Pos.Dist(b.Pos)
		if out.LB < euclid*(1-1e-9)-1e-9 {
			t.Fatalf("LB %v below Euclidean floor %v", out.LB, euclid)
		}
		if out.LB > out.UB*(1+1e-9)+1e-9 {
			t.Fatalf("range inverted: LB %v > UB %v", out.LB, out.UB)
		}
		if out.Accuracy > 1+1e-9 {
			t.Fatalf("accuracy %v above 1", out.Accuracy)
		}
	})
}

// fuzzQueryPoint maps two arbitrary floats onto a surface point inside the
// terrain extent.
func fuzzQueryPoint(db *TerrainDB, fx, fy float64) (mesh.SurfacePoint, bool) {
	if math.IsNaN(fx) || math.IsNaN(fy) {
		return mesh.SurfacePoint{}, false
	}
	ext := db.Mesh.Extent()
	p := geom.Vec2{
		X: ext.MinX + clamp01(fx)*ext.Width(),
		Y: ext.MinY + clamp01(fy)*ext.Height(),
	}
	q, err := db.SurfacePointAt(p)
	if err != nil {
		return mesh.SurfacePoint{}, false
	}
	return q, true
}

// clamp01 folds an arbitrary finite float into [0, 1].
func clamp01(v float64) float64 {
	v = math.Abs(math.Mod(v, 1))
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	return v
}

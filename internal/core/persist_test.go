package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 40, 1212)
	q := queryPoints(t, db, 1, 64)[0]
	want, err := db.MR3(q, 5, S2, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Structural equality.
	if db2.Mesh.NumVerts() != db.Mesh.NumVerts() || db2.Mesh.NumFaces() != db.Mesh.NumFaces() {
		t.Fatalf("mesh mismatch: %v vs %v", db2.Mesh, db.Mesh)
	}
	if db2.Tree.NumLeaves != db.Tree.NumLeaves || len(db2.Tree.Edges) != len(db.Tree.Edges) {
		t.Fatal("tree mismatch")
	}
	if db2.MSDN.NumLines() != db.MSDN.NumLines() || db2.MSDN.NumPoints() != db.MSDN.NumPoints() {
		t.Fatal("MSDN mismatch")
	}
	if len(db2.Objects()) != len(db.Objects()) {
		t.Fatal("objects mismatch")
	}

	// Identical query results (the loaded database is behaviourally equal).
	q2, err := db2.SurfacePointAt(q.XY())
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.MR3(q2, 5, S2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Neighbors) != len(want.Neighbors) {
		t.Fatalf("neighbour count %d vs %d", len(got.Neighbors), len(want.Neighbors))
	}
	for i := range want.Neighbors {
		if got.Neighbors[i].Object.ID != want.Neighbors[i].Object.ID {
			t.Errorf("neighbour %d: %d vs %d", i,
				got.Neighbors[i].Object.ID, want.Neighbors[i].Object.ID)
		}
		if got.Neighbors[i].UB != want.Neighbors[i].UB {
			t.Errorf("neighbour %d UB: %v vs %v", i, got.Neighbors[i].UB, want.Neighbors[i].UB)
		}
	}
	if got.Metrics().Pages != want.Metrics().Pages {
		t.Errorf("page count changed after reload: %d vs %d", got.Metrics().Pages, want.Metrics().Pages)
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := buildDB(t, dem.EP, 8, 10, 1313)
	path := filepath.Join(t.TempDir(), "terrain.skdb")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadFile(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Mesh.NumVerts() != db.Mesh.NumVerts() {
		t.Error("mesh mismatch after file round trip")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.skdb"), Config{}); err == nil {
		t.Error("missing file should error")
	}
}

// TestSnapshotV3BackwardCompat pins the v3 reader: a genuine v3 byte stream
// (no flat-buffer tail) still loads, rebuilding the pathnet and the Dxy
// pack, and answers queries exactly as the database that saved it.
func TestSnapshotV3BackwardCompat(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 40, 1212)
	q := queryPoints(t, db, 1, 64)[0]
	want, err := db.MR3(q, 5, S2, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.saveV3(&buf); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:8]); got != "SKNNDB03" {
		t.Fatalf("v3 magic = %q", got)
	}
	db2, err := Load(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := db2.SurfacePointAt(q.XY())
	if err != nil {
		t.Fatal(err)
	}
	got, err := db2.MR3(q2, 5, S2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, "v3", got, want)
}

// TestSnapshotV4Equivalence is the round-trip equivalence guarantee behind
// the flat-buffer tail: restoring from the v4 flat buffers (a straight read)
// and restoring from v3 (Steiner rebuild + STR re-pack) yield databases
// that answer MR3, EA and range queries bit-identically, page counts
// included.
func TestSnapshotV4Equivalence(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 60, 2006)
	qs := queryPoints(t, db, 3, 77)

	var b3, b4 bytes.Buffer
	if err := db.saveV3(&b3); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(&b4); err != nil {
		t.Fatal(err)
	}
	if got := string(b4.Bytes()[:8]); got != "SKNNDB04" {
		t.Fatalf("v4 magic = %q", got)
	}
	db3, err := Load(&b3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	db4, err := Load(&b4, Config{})
	if err != nil {
		t.Fatal(err)
	}

	for qi, q := range qs {
		q3, err := db3.SurfacePointAt(q.XY())
		if err != nil {
			t.Fatal(err)
		}
		q4, err := db4.SurfacePointAt(q.XY())
		if err != nil {
			t.Fatal(err)
		}
		want, err := db3.MR3(q3, 5, S2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := db4.MR3(q4, 5, S2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, fmt.Sprintf("q%d MR3", qi), got, want)

		want, err = db3.EA(q3, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err = db4.EA(q4, 5)
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, fmt.Sprintf("q%d EA", qi), got, want)

		want, err = db3.SurfaceRange(q3, 250.0, S2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err = db4.SurfaceRange(q4, 250.0, S2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, fmt.Sprintf("q%d range", qi), got, want)
	}
}

// compareResults asserts bit-identical neighbour sets (IDs, LB/UB bit
// patterns) and identical page counts between two query results.
func compareResults(t *testing.T, label string, got, want Result) {
	t.Helper()
	if len(got.Neighbors) != len(want.Neighbors) {
		t.Fatalf("%s: neighbour count %d vs %d", label, len(got.Neighbors), len(want.Neighbors))
	}
	for i := range want.Neighbors {
		g, w := got.Neighbors[i], want.Neighbors[i]
		if g.Object.ID != w.Object.ID {
			t.Errorf("%s: neighbour %d: %d vs %d", label, i, g.Object.ID, w.Object.ID)
		}
		if math.Float64bits(g.LB) != math.Float64bits(w.LB) ||
			math.Float64bits(g.UB) != math.Float64bits(w.UB) {
			t.Errorf("%s: neighbour %d bounds (%v,%v) vs (%v,%v)", label, i, g.LB, g.UB, w.LB, w.UB)
		}
	}
	if got.Metrics().Pages != want.Metrics().Pages {
		t.Errorf("%s: page count %d vs %d", label, got.Metrics().Pages, want.Metrics().Pages)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a database")), Config{}); err == nil {
		t.Error("garbage should fail")
	}
	// Valid magic, truncated body.
	var buf bytes.Buffer
	buf.Write(dbMagic[:])
	buf.Write([]byte{1, 2, 3})
	if _, err := Load(&buf, Config{}); err == nil {
		t.Error("truncated snapshot should fail")
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	db := buildDB(t, dem.BH, 8, 40, 99)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one bit inside float payload (vertex coordinates) and inside the
	// footer itself: structural validation cannot see either, so this pins
	// the CRC-32C check.
	for _, off := range []int{16, 100, 1000, len(raw) - 5, len(raw) - 2} {
		bad := bytes.Clone(raw)
		bad[off] ^= 0x10
		_, err := Load(bytes.NewReader(bad), Config{})
		if err == nil {
			t.Fatalf("bit flip at offset %d loaded silently", off)
		}
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("bit flip at offset %d: err = %v, want ErrBadSnapshot", off, err)
		}
	}
	// The pristine bytes still load.
	if _, err := Load(bytes.NewReader(raw), Config{}); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

func TestLoadWithoutObjects(t *testing.T) {
	// A database saved before SetObjects loads fine and reports no objects.
	g := dem.Synthesize(dem.EP, 8, 10, 5)
	m := meshFromGrid(g)
	db, err := BuildTerrainDB(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(db2.Objects()) != 0 {
		t.Errorf("expected no objects, got %d", len(db2.Objects()))
	}
	if db2.ObjectStore() != nil {
		t.Error("object store should be nil without objects")
	}
}

func TestSnapshotEpochRoundTrip(t *testing.T) {
	// A snapshot taken after updates resumes at the same epoch with the
	// surviving object set.
	g := dem.Synthesize(dem.EP, 8, 10, 6)
	m := meshFromGrid(g)
	db, err := BuildTerrainDB(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	objs, err := workload.RandomObjects(m, db.Loc, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	db.SetObjects(objs)
	store := db.ObjectStore()
	store.Upsert([]workload.Object{objs[0]}) // epoch 1 (moves nothing, same point)
	store.Delete([]int64{objs[1].ID})        // epoch 2
	if got := db.CurrentEpoch(); got != 2 {
		t.Fatalf("pre-save epoch = %d, want 2", got)
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.CurrentEpoch(); got != 2 {
		t.Errorf("restored epoch = %d, want 2", got)
	}
	if got, want := len(db2.Objects()), len(db.Objects()); got != want {
		t.Fatalf("restored %d objects, want %d", got, want)
	}
	if _, ok := db2.Object(objs[1].ID); ok {
		t.Error("deleted object resurrected by snapshot round-trip")
	}
	// The restored store continues the sequence, not restarts it.
	if e := db2.ObjectStore().Upsert([]workload.Object{objs[2]}); e != 3 {
		t.Errorf("post-restore update produced epoch %d, want 3", e)
	}
}

package core

import (
	"math"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/workload"
)

func TestMaskedKNNUnconstrainedMatchesMR3Set(t *testing.T) {
	db := buildDB(t, dem.EP, 16, 40, 1515)
	q := queryPoints(t, db, 1, 66)[0]
	k := 5
	all := func(mesh.FaceID) bool { return true }
	masked, err := db.MaskedKNN(q, k, all)
	if err != nil {
		t.Fatal(err)
	}
	sameKSet(t, db, q, masked, k)
	// Masked distances are the reference distances.
	for _, n := range masked {
		want := db.ReferenceDistance(q, n.Object.Point)
		if math.Abs(n.UB-want) > 1e-9*(1+want) {
			t.Errorf("masked distance %v != reference %v", n.UB, want)
		}
	}
}

func TestMaskedKNNObstacleForcesDetour(t *testing.T) {
	// Flat terrain with a wall of blocked faces between query and object:
	// the masked distance must exceed the unconstrained one.
	g := dem.NewGrid(17, 17, 10)
	m := mesh.FromGrid(g)
	db, err := BuildTerrainDB(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	loc := db.Loc
	mk := func(x, y float64) mesh.SurfacePoint {
		sp, err := mesh.MakeSurfacePoint(m, loc, geom.Vec2{X: x, Y: y})
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	q := mk(20, 80)
	obj := workload.Object{ID: 1, Point: mk(140, 80)}
	db.SetObjects([]workload.Object{obj})

	free, err := db.MaskedKNN(q, 1, func(mesh.FaceID) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	// Block a vertical wall (wider than one grid cell so both triangles of
	// every crossed cell are masked) with a gap at the bottom.
	wall := geom.MBR{MinX: 65, MinY: 20, MaxX: 95, MaxY: 170}
	mask := RegionMask(m, []geom.MBR{wall})
	detour, err := db.MaskedKNN(q, 1, mask)
	if err != nil {
		t.Fatal(err)
	}
	if len(detour) != 1 {
		t.Fatalf("detour results = %d", len(detour))
	}
	if detour[0].UB <= free[0].UB+10 {
		t.Errorf("detour %v should clearly exceed free %v", detour[0].UB, free[0].UB)
	}
	// Sealing the object off entirely: unreachable → excluded.
	sealed := RegionMask(m, []geom.MBR{{MinX: 65, MinY: -10, MaxX: 95, MaxY: 170}})
	none, err := db.MaskedKNN(q, 1, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("sealed-off object still returned: %v", none)
	}
}

func TestSlopeMask(t *testing.T) {
	// Flat mesh: every face passes any positive slope limit.
	flat := mesh.FromGrid(dem.NewGrid(5, 5, 10))
	mask := SlopeMask(flat, 1)
	for f := 0; f < flat.NumFaces(); f++ {
		if !mask(mesh.FaceID(f)) {
			t.Fatalf("flat face %d rejected", f)
		}
	}
	// Rugged mesh: a tight limit rejects some faces, a loose one accepts all.
	rough := mesh.FromGrid(dem.Synthesize(dem.BH, 16, 10, 3))
	tight := SlopeMask(rough, 10)
	loose := SlopeMask(rough, 89)
	rejected := 0
	for f := 0; f < rough.NumFaces(); f++ {
		if !tight(mesh.FaceID(f)) {
			rejected++
		}
		if !loose(mesh.FaceID(f)) {
			t.Fatalf("loose mask rejected face %d", f)
		}
	}
	if rejected == 0 {
		t.Error("tight slope mask rejected nothing on rugged terrain")
	}
}

func TestMaskedKNNErrors(t *testing.T) {
	db := buildDB(t, dem.EP, 8, 10, 1616)
	q := queryPoints(t, db, 1, 67)[0]
	if _, err := db.MaskedKNN(q, 3, nil); err == nil {
		t.Error("nil mask should error")
	}
	if _, err := db.MaskedKNN(q, 0, func(mesh.FaceID) bool { return true }); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := db.MaskedKNN(q, 3, func(mesh.FaceID) bool { return false }); err == nil {
		t.Error("all-blocked mask should error")
	}
	blockQ := func(f mesh.FaceID) bool { return f != q.Face }
	if _, err := db.MaskedKNN(q, 3, blockQ); err == nil {
		t.Error("blocked query face should error")
	}
}

func TestAndMask(t *testing.T) {
	a := func(f mesh.FaceID) bool { return f%2 == 0 }
	b := func(f mesh.FaceID) bool { return f < 10 }
	m := AndMask(a, b)
	if !m(4) || m(5) || m(12) {
		t.Error("AndMask conjunction wrong")
	}
}

func TestDistanceWithAccuracy(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 5, 1717)
	ext := db.Mesh.Extent()
	a, err := db.SurfacePointAt(geom.Vec2{X: ext.MinX + 10, Y: ext.MinY + 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.SurfacePointAt(geom.Vec2{X: ext.MaxX - 11, Y: ext.MaxY - 13})
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.DistanceWithAccuracy(a, b, 0.5, S1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy < 0.5 {
		t.Errorf("accuracy %v below requested 0.5", r.Accuracy)
	}
	truth := db.ReferenceDistance(a, b)
	if r.LB > truth+1e-6*(1+truth) || r.UB < truth-1e-6*(1+truth) {
		t.Errorf("range [%v,%v] misses reference %v", r.LB, r.UB, truth)
	}
	// Requesting full accuracy runs the whole ladder and collapses at the
	// pathnet level.
	r2, err := db.DistanceWithAccuracy(a, b, 1.0, S1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Accuracy < 0.999 {
		t.Errorf("full-ladder accuracy %v should collapse to 1", r2.Accuracy)
	}
	if math.Abs(r2.UB-truth) > 1e-9*(1+truth) {
		t.Errorf("collapsed UB %v != reference %v", r2.UB, truth)
	}
	// Invalid accuracy.
	if _, err := db.DistanceWithAccuracy(a, b, 0, S1); err == nil {
		t.Error("accuracy 0 should error")
	}
	if _, err := db.DistanceWithAccuracy(a, b, 1.5, S1); err == nil {
		t.Error("accuracy >1 should error")
	}
}

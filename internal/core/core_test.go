package core

import (
	"math"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/mesh"
	"surfknn/internal/workload"
)

// testDB builds a small terrain database with objects, shared across tests
// via subtests to amortise construction.
func buildDB(t testing.TB, preset dem.Preset, size int, nObjects int, seed int64) *TerrainDB {
	t.Helper()
	m := mesh.FromGrid(dem.Synthesize(preset, size, 10, seed))
	db, err := BuildTerrainDB(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	objs, err := workload.RandomObjects(m, db.Loc, nObjects, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	db.SetObjects(objs)
	return db
}

func queryPoints(t testing.TB, db *TerrainDB, n int, seed int64) []mesh.SurfacePoint {
	t.Helper()
	qs, err := workload.RandomQueries(db.Mesh, db.Loc, n, db.Mesh.Extent().Width()/10, seed)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

func idsOf(ns []Neighbor) map[int64]bool {
	out := make(map[int64]bool, len(ns))
	for _, n := range ns {
		out[n.Object.ID] = true
	}
	return out
}

// sameKSet compares result sets allowing ties at the boundary: every
// returned object must have reference distance <= the brute-force k-th
// distance (within tolerance).
func sameKSet(t *testing.T, db *TerrainDB, q mesh.SurfacePoint, got []Neighbor, k int) {
	t.Helper()
	want := db.BruteForce(q, k)
	if len(got) != len(want) {
		t.Fatalf("got %d neighbours, want %d", len(got), len(want))
	}
	kth := want[len(want)-1].UB
	tol := 1e-6 * (1 + kth)
	wantIDs := idsOf(want)
	for _, n := range got {
		if wantIDs[n.Object.ID] {
			continue
		}
		// Not in the brute-force set: must be a tie at the boundary.
		d := db.ReferenceDistance(q, n.Object.Point)
		if d > kth+tol {
			t.Errorf("object %d (d=%v) in result but true k-th distance is %v", n.Object.ID, d, kth)
		}
	}
}

func TestMR3MatchesBruteForce(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 60, 101)
	qs := queryPoints(t, db, 4, 55)
	for _, sched := range []Schedule{S1, S2, S3} {
		for _, k := range []int{1, 3, 8} {
			for qi, q := range qs {
				res, err := db.MR3(q, k, sched, Options{})
				if err != nil {
					t.Fatalf("%s k=%d q%d: %v", sched.Name, k, qi, err)
				}
				if len(res.Neighbors) != k {
					t.Fatalf("%s k=%d q%d: %d neighbours", sched.Name, k, qi, len(res.Neighbors))
				}
				sameKSet(t, db, q, res.Neighbors, k)
				// Ranges must bracket the reference distance.
				for _, n := range res.Neighbors {
					d := db.ReferenceDistance(q, n.Object.Point)
					if n.LB > d+1e-6*(1+d) || n.UB < d-1e-6*(1+d) {
						t.Errorf("%s k=%d: range [%v,%v] misses reference %v", sched.Name, k, n.LB, n.UB, d)
					}
				}
			}
		}
	}
}

func TestEAMatchesBruteForce(t *testing.T) {
	db := buildDB(t, dem.EP, 16, 50, 202)
	qs := queryPoints(t, db, 3, 56)
	for _, k := range []int{1, 5} {
		for qi, q := range qs {
			res, err := db.EA(q, k)
			if err != nil {
				t.Fatalf("k=%d q%d: %v", k, qi, err)
			}
			if len(res.Neighbors) != k {
				t.Fatalf("k=%d q%d: %d neighbours", k, qi, len(res.Neighbors))
			}
			sameKSet(t, db, q, res.Neighbors, k)
		}
	}
}

func TestMR3AndEAAgree(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 40, 303)
	q := queryPoints(t, db, 1, 57)[0]
	k := 5
	mr3, err := db.MR3(q, k, S2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ea, err := db.EA(q, k)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the k-th reference distances of the two sets (MR3's final
	// upper bounds may be loose once the set is determined, so compare
	// under the reference metric; sets may permute on ties).
	mrK, eaK := 0.0, 0.0
	for _, n := range mr3.Neighbors {
		mrK = math.Max(mrK, db.ReferenceDistance(q, n.Object.Point))
	}
	for _, n := range ea.Neighbors {
		eaK = math.Max(eaK, db.ReferenceDistance(q, n.Object.Point))
	}
	if math.Abs(mrK-eaK) > 1e-6*(1+eaK) {
		t.Errorf("k-th distance: MR3 %v vs EA %v", mrK, eaK)
	}
}

func TestMR3MetricsPopulated(t *testing.T) {
	db := buildDB(t, dem.EP, 16, 40, 404)
	q := queryPoints(t, db, 1, 58)[0]
	res, err := db.MR3(q, 5, S1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics()
	if m.Pages == 0 || m.UpperBounds == 0 || m.LowerBounds == 0 || m.Iterations == 0 {
		t.Errorf("metrics not populated: %+v", m)
	}
	if m.Elapsed < m.CPU {
		t.Errorf("elapsed %v below cpu %v", m.Elapsed, m.CPU)
	}
}

func TestIOIntegrationReducesPages(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 80, 505)
	q := queryPoints(t, db, 1, 59)[0]
	k := 10
	on, err := db.MR3(q, k, S2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := db.MR3(q, k, S2, Options{DisableIOIntegration: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Metrics().Pages > off.Metrics().Pages {
		t.Errorf("integration on: %d pages, off: %d pages (on should not exceed off)",
			on.Metrics().Pages, off.Metrics().Pages)
	}
	// Same answer either way.
	sameKSet(t, db, q, on.Neighbors, k)
	sameKSet(t, db, q, off.Neighbors, k)
}

func TestDummyLBSameAnswer(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 60, 606)
	q := queryPoints(t, db, 1, 60)[0]
	k := 6
	with, err := db.MR3(q, k, S1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := db.MR3(q, k, S1, Options{DisableDummyLB: true})
	if err != nil {
		t.Fatal(err)
	}
	sameKSet(t, db, q, with.Neighbors, k)
	sameKSet(t, db, q, without.Neighbors, k)
}

func TestScheduleAccessors(t *testing.T) {
	if S1.Steps() != 6 || S2.Steps() != 4 || S3.Steps() != 3 {
		t.Errorf("steps = %d,%d,%d", S1.Steps(), S2.Steps(), S3.Steps())
	}
	dm, ms := S1.At(0)
	if dm != 0.005 || ms != 0.25 {
		t.Errorf("S1.At(0) = %v,%v", dm, ms)
	}
	dm, ms = S1.At(5)
	if dm != PathnetResolution || ms != 1.0 {
		t.Errorf("S1.At(5) = %v,%v", dm, ms)
	}
	dm, ms = S3.At(10)
	if dm != PathnetResolution || ms != 1.0 {
		t.Errorf("S3.At(10) = %v,%v", dm, ms)
	}
	if SDNLevel(0.25) != 0 || SDNLevel(1.0) != 4 || SDNLevel(0.4) != 1 {
		t.Error("SDNLevel mapping wrong")
	}
}

func TestMR3ErrorsWithoutObjects(t *testing.T) {
	m := mesh.FromGrid(dem.Synthesize(dem.EP, 8, 10, 1))
	db, err := BuildTerrainDB(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := db.SurfacePointAt(m.Extent().Center())
	if _, err := db.MR3(q, 3, S1, Options{}); err == nil {
		t.Error("MR3 without objects should error")
	}
	if _, err := db.EA(q, 3); err == nil {
		t.Error("EA without objects should error")
	}
	db.SetObjects(nil)
	if _, err := db.MR3(q, 0, S1, Options{}); err == nil {
		t.Error("k=0 should error")
	}
}

func TestKLargerThanObjects(t *testing.T) {
	db := buildDB(t, dem.EP, 8, 5, 707)
	q := queryPoints(t, db, 1, 61)[0]
	res, err := db.MR3(q, 10, S2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 5 {
		t.Errorf("neighbours = %d, want all 5 objects", len(res.Neighbors))
	}
}

// meshFromGrid is a tiny helper shared by persistence tests.
func meshFromGrid(g *dem.Grid) *mesh.Mesh { return mesh.FromGrid(g) }

func TestBothFamilyLBSameAnswer(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 50, 1414)
	q := queryPoints(t, db, 1, 65)[0]
	k := 5
	res, err := db.MR3(q, k, S2, Options{BothFamilyLB: true})
	if err != nil {
		t.Fatal(err)
	}
	sameKSet(t, db, q, res.Neighbors, k)
}

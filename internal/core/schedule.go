// Package core implements the paper's contribution: surface k-NN (sk-NN)
// query processing by Multi-Resolution Range Ranking (MR3, §4), together
// with the Enhanced Approximation (EA) benchmark algorithm it is evaluated
// against (§5.2). Distance ranges come from the DMTM upper bounds
// (internal/multires + internal/pathnet) and MSDN lower bounds
// (internal/sdn); terrain data flows through the paged stores in
// internal/storage so that every experiment reports disk pages accessed.
package core

import "math"

// SDNLadder lists the SDN resolutions materialised in storage; an SDN
// "level" is an index into this ladder (§5.3 uses 25–100 %).
var SDNLadder = []float64{0.25, 0.375, 0.5, 0.75, 1.0}

// PathnetResolution marks the DMTM ">100 %" level: the Steiner-refined
// pathnet (the paper's "DMTM resolution 200%", where dN = dS by
// definition).
const PathnetResolution = 2.0

// Schedule is a resolution step-length schedule (§5.3). Iteration i uses
// DMTM[i] and MSDN[min(i, len-1)]; once a ladder is exhausted its last
// entry keeps being used.
type Schedule struct {
	Name string
	DMTM []float64
	MSDN []float64
}

// The paper's three step-length schedules (§5.3).
var (
	// S1 (s=1): DMTM 0.5, 25, 50, 75, 100, 200 %; MSDN 25, 37.5, 50, 75, 100 %.
	S1 = Schedule{
		Name: "s=1",
		DMTM: []float64{0.005, 0.25, 0.5, 0.75, 1.0, PathnetResolution},
		MSDN: []float64{0.25, 0.375, 0.5, 0.75, 1.0},
	}
	// S2 (s=2): DMTM 0.5, 50, 100, 200 %; MSDN 25, 50, 100 %.
	S2 = Schedule{
		Name: "s=2",
		DMTM: []float64{0.005, 0.5, 1.0, PathnetResolution},
		MSDN: []float64{0.25, 0.5, 1.0},
	}
	// S3 (s=3): DMTM 0.5, 100, 200 %; MSDN 25, 100 %.
	S3 = Schedule{
		Name: "s=3",
		DMTM: []float64{0.005, 1.0, PathnetResolution},
		MSDN: []float64{0.25, 1.0},
	}
)

// Steps returns the number of refinement iterations in the schedule.
func (s Schedule) Steps() int {
	if len(s.DMTM) > len(s.MSDN) {
		return len(s.DMTM)
	}
	return len(s.MSDN)
}

// At returns the (DMTM resolution, MSDN resolution) pair of iteration i,
// clamping each ladder to its last entry.
func (s Schedule) At(i int) (dmtm, msdn float64) {
	di := i
	if di >= len(s.DMTM) {
		di = len(s.DMTM) - 1
	}
	mi := i
	if mi >= len(s.MSDN) {
		mi = len(s.MSDN) - 1
	}
	return s.DMTM[di], s.MSDN[mi]
}

// SDNLevel maps an MSDN resolution to its storage level (nearest ladder
// entry).
func SDNLevel(res float64) int32 {
	best := 0
	bestD := math.Inf(1)
	for i, r := range SDNLadder {
		if d := math.Abs(r - res); d < bestD {
			best, bestD = i, d
		}
	}
	return int32(best)
}

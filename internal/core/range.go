package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"surfknn/internal/index"
	"surfknn/internal/mesh"
	"surfknn/internal/stats"
	"surfknn/internal/workload"
)

// The paper's conclusion (§6) notes that DMTM and MSDN "provide a framework
// capable of supporting other distance comparison based queries, such as
// range queries and closest pair queries". This file implements both on the
// same multiresolution machinery.

// SurfaceRange returns every object whose surface distance to q is at most
// radius, with final distance ranges, under the session's default context.
// It uses the same filter-and-refine strategy as MR3: a 2-D circular range
// query collects candidates (valid because dE <= dS), then iterative bound
// refinement classifies each candidate against the radius, falling back to
// the reference distance only for ranges straddling it.
func (s *Session) SurfaceRange(q mesh.SurfacePoint, radius float64, sched Schedule, opt Options) (Result, error) {
	return s.SurfaceRangeCtx(nil, q, radius, sched, opt)
}

// SurfaceRangeCtx is SurfaceRange bounded by a per-call context: ctx cancels
// or deadlines this query only (nil selects the session's default context).
func (s *Session) SurfaceRangeCtx(ctx context.Context, q mesh.SurfacePoint, radius float64, sched Schedule, opt Options) (Result, error) {
	if s.db.store == nil {
		return Result{}, fmt.Errorf("core: no objects installed (call SetObjects)")
	}
	if radius < 0 || math.IsNaN(radius) {
		return Result{}, fmt.Errorf("core: invalid radius %g", radius)
	}
	s.beginQuery(ctx, algoRange)
	ns, err := s.surfaceRange(q, radius, sched, opt)
	return s.endQuery(algoRange, 0, ns, err)
}

// surfaceRange runs the query under three phases: the 2-D candidate
// collection, the LOD refinement loop (one trace span per iteration), and
// the reference-distance settlement of still-straddling ranges.
func (s *Session) surfaceRange(q mesh.SurfacePoint, radius float64, sched Schedule, opt Options) ([]Neighbor, error) {
	if err := s.interrupted(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()

	// Candidates enter in canonical order (ascending planar distance, id
	// tiebreak) so the result's stable upper-bound sort breaks ties
	// identically everywhere — see the matching note in mr3.go.
	s.beginPhase(stats.PhaseRange2D)
	s.items = s.view.WithinDistInto(q.XY(), radius, &s.dxyVisits, s.items[:0])
	index.SortByDist(s.items, q.XY())
	s.objs = s.viewObjectsInto(s.items, s.objs)
	s.curPhase().Candidates += len(s.objs)

	s.beginPhase(stats.PhaseRefine)
	r := &s.rk
	r.begin(s, q, len(s.objs), sched, opt, false)
	for _, o := range s.objs {
		r.addCand(o)
	}
	steps := sched.Steps()
	for it := 0; it < steps; it++ {
		if err := s.interrupted(); err != nil {
			return nil, err
		}
		targets := r.rangeUndecided(radius)
		if len(targets) == 0 {
			break
		}
		r.pc.Iterations++
		dmRes, sdnRes := sched.At(it)
		span := r.iterSpan(it, dmRes, sdnRes, len(targets))
		err := r.iterateRange(targets, dmRes, sdnRes, radius)
		s.endSpan(span)
		if err != nil {
			return nil, err
		}
	}

	// Settlement for candidates whose range still straddles the radius.
	s.beginPhase(stats.PhaseSettle)
	out := r.resultsBuf[:0]
	for i := range r.cands {
		c := &r.cands[i]
		switch {
		case c.ub <= radius:
			out = append(out, Neighbor{Object: c.obj, LB: c.lb, UB: c.ub})
		case c.lb > radius:
			// excluded
		default:
			d := s.path.DistanceWithin(q, c.obj.Point, r.regionOf(c))
			if math.IsInf(d, 1) {
				// Region clipped every path; retry unclipped (value-only:
				// the polyline is not needed) — a genuinely unreachable
				// object keeps d = +Inf and fails the d <= radius test.
				d = s.path.DistanceValue(q, c.obj.Point)
			}
			s.curPhase().UpperBounds++
			if d <= radius {
				out = append(out, Neighbor{Object: c.obj, LB: d, UB: d})
			}
		}
	}
	sortNeighborsByUB(out)
	return out, nil
}

// sortNeighborsByUB orders the settled results by ascending upper bound
// with a stable insertion sort (sort.Slice allocates its closure; result
// sets are small).
func sortNeighborsByUB(a []Neighbor) {
	for i := 1; i < len(a); i++ {
		n := a[i]
		j := i - 1
		for j >= 0 && a[j].UB > n.UB {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = n
	}
}

// SurfaceRange is the one-shot convenience form: it runs the query in a
// fresh throwaway session.
func (db *TerrainDB) SurfaceRange(q mesh.SurfacePoint, radius float64, sched Schedule, opt Options) (Result, error) {
	return db.NewSession(nil).SurfaceRange(q, radius, sched, opt)
}

// iterateRange is the range-query variant of one refinement iteration: the
// classification target is the fixed radius rather than the k-th bound. A
// fetch failure aborts the query — partial terrain data would corrupt the
// bound ladder.
func (r *ranker) iterateRange(targets []*candidate, dmRes, sdnRes, radius float64) error {
	numGroups := r.groupRegions(targets)
	level := SDNLevel(sdnRes)
	for gi := 0; gi < numGroups; gi++ {
		tm := int32(0)
		if dmRes < PathnetResolution {
			tm = r.s.db.Tree.TimeForResolution(dmRes)
		}
		edgeIDs, err := r.s.fetchDMTM(r.groupRegion[gi], tm)
		if err != nil {
			return fmt.Errorf("core: fetching DMTM records: %w", err)
		}
		if _, err := r.s.fetchSDN(r.groupRegion[gi], level); err != nil {
			return fmt.Errorf("core: fetching SDN records: %w", err)
		}
		for ti, c := range targets {
			if r.groupOf[ti] != int32(gi) {
				continue
			}
			r.updateUB(c, dmRes, tm, edgeIDs)
			// For range queries the dummy-lower-bound test is against the
			// radius: pass it as the exclusion threshold.
			r.updateLB(c, sdnRes, radius)
		}
	}
	return nil
}

// rangeUndecided fills the target scratch with the candidates whose bound
// range still straddles the radius.
func (r *ranker) rangeUndecided(radius float64) []*candidate {
	out := r.targets[:0]
	for i := range r.cands {
		c := &r.cands[i]
		if c.lb <= radius && c.ub > radius {
			n := len(out)
			out = out[:n+1]
			out[n] = c
		}
	}
	r.targets = out
	return out
}

// ClosestPair returns the pair of objects with the smallest surface
// distance between them, found by running a 1-NN query from each object
// against the remainder, cheapest (by 2-D nearest-neighbour distance)
// first, with the running best distance pruning later sources. For larger
// object sets this beats the naive all-pairs reference computation by
// orders of magnitude while returning the same pair.
func (s *Session) ClosestPair(sched Schedule, opt Options) (a, b Neighbor, err error) {
	return s.ClosestPairCtx(nil, sched, opt)
}

// ClosestPairCtx is ClosestPair bounded by a per-call context (nil selects
// the session default). It drives one nested MR3 query per source object, so
// it opens no query recording of its own — each nested query reports its own
// Cost and registry observation; ctx threads through to every one of them.
func (s *Session) ClosestPairCtx(ctx context.Context, sched Schedule, opt Options) (a, b Neighbor, err error) {
	db := s.db
	if db.store == nil {
		return a, b, fmt.Errorf("core: closest pair needs at least two objects")
	}
	// Pin one epoch for the source enumeration and its ordering. The nested
	// MR3 queries each pin their own (possibly newer) epoch — under
	// concurrent updates the pair is advisory, like any multi-query scan.
	view := db.store.Pin()
	defer view.Release()
	table := view.Table()
	if len(table) < 2 {
		return a, b, fmt.Errorf("core: closest pair needs at least two objects")
	}
	if ctx == nil {
		ctx = s.base
	}
	s.ctx = ctx
	// Order the sources by their 2-D 1-NN distance: pairs that are close
	// in the plane are the best candidates for the surface closest pair.
	type src struct {
		idx int
		d2  float64
	}
	srcs := make([]src, 0, len(table))
	for i, o := range table {
		nn := view.KNN(o.Point.XY(), 2, nil) // first hit is the object itself
		d := math.Inf(1)
		if len(nn) == 2 {
			d = nn[1].P.Dist(o.Point.XY())
		}
		srcs = append(srcs, src{i, d})
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].d2 < srcs[j].d2 })

	best := math.Inf(1)
	for _, sc := range srcs {
		if cerr := ctx.Err(); cerr != nil {
			return a, b, cerr
		}
		// The 2-D NN distance lower-bounds this source's surface NN
		// distance; once it exceeds the best pair found, no later source
		// can win.
		if sc.d2 >= best {
			break
		}
		o := table[sc.idx]
		res, qerr := s.knnExcluding(ctx, o, sched, opt)
		if qerr != nil {
			return a, b, qerr
		}
		if len(res) == 0 {
			continue
		}
		d := s.referenceDistance(o.Point, res[0].Object.Point)
		if d < best {
			best = d
			a = Neighbor{Object: o, LB: d, UB: d}
			b = Neighbor{Object: res[0].Object, LB: d, UB: d}
		}
	}
	if math.IsInf(best, 1) {
		return a, b, fmt.Errorf("core: no pair found")
	}
	return a, b, nil
}

// ClosestPair is the one-shot convenience form: it runs the query in a
// fresh throwaway session.
func (db *TerrainDB) ClosestPair(sched Schedule, opt Options) (a, b Neighbor, err error) {
	return db.NewSession(nil).ClosestPair(sched, opt)
}

// knnExcluding runs a 1-NN query from an object's location, excluding the
// object itself.
func (s *Session) knnExcluding(ctx context.Context, o workload.Object, sched Schedule, opt Options) ([]Neighbor, error) {
	res, err := s.MR3Ctx(ctx, o.Point, 2, sched, opt)
	if err != nil {
		return nil, err
	}
	out := make([]Neighbor, 0, 1)
	for _, n := range res.Neighbors {
		if n.Object.ID != o.ID {
			out = append(out, n)
			break
		}
	}
	return out, nil
}

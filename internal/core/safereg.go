package core

import (
	"context"
	"fmt"
	"math"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
)

// SafeRegion is a planar disc around a query point inside which the query's
// top-k answer — the same object IDs, in the same output order — is
// provably unchanged: a continuous query whose point moves within the disc
// may keep serving the prior result without touching the engine.
//
// Derivation (see DESIGN.md "Continuous queries" for the full argument).
// The region is restricted to q's containing face, where the surface metric
// is Lipschitz in the planar query position: a planar move of length s
// moves the 3-D query point by at most L·s, with L = 1/|n_z| the face's
// slope stretch (n the unit face normal), and every per-object surface
// distance therefore shifts by at most L·s. The radius is the largest s
// such that, under a ±L·s shift of every distance,
//
//  1. consecutive result intervals stay strictly disjoint
//     (ub[i] + L·s < lb[i+1] − L·s), preserving the output order;
//  2. every enumerated non-result candidate stays strictly behind the k-th
//     (ub[k] + L·s < lbRest − L·s);
//  3. every object the step-3 range query never enumerated — planar
//     distance > R3, hence surface distance > R3 even after the move
//     shrinks its planar clearance by s — stays behind the k-th
//     (ub[k] + L·s < R3 − s);
//
// all minimised with the planar clearance to the face's own edges (the
// Lipschitz constant is only valid inside the face). Each gap is shrunk by
// the ranker's classification slack (1e-9 relative) so a re-query at the
// perturbed point cannot flip a decision the original query made within
// floating-point tolerance. Note r ≤ (lb[k+1] − ub[k])/2 always, since
// L ≥ 1: the flat-terrain gap formula is an upper bound on the radius.
type SafeRegion struct {
	// Center is the planar query position the region certifies.
	Center geom.Vec2
	// Radius is the certified planar move budget (0 when nothing could be
	// certified — on a face edge, with touching intervals, or k = 0).
	Radius float64
	// Guard is the invalidation radius: an object whose planar position
	// stays farther than Guard from Center can neither enter the top-k of
	// any point within the region nor have been enumerated by the query, so
	// inserting, moving or deleting it provably leaves the cached result —
	// bit for bit — intact. Guard = R3 + Radius, where R3 is the step-3
	// search radius.
	Guard float64
}

// Contains reports whether a planar point lies within the safe region.
func (sr SafeRegion) Contains(p geom.Vec2) bool {
	return p.Dist(sr.Center) <= sr.Radius
}

// GuardMBR is the axis-aligned box of the guard disc — the subscription's
// search-region footprint the stripe batcher and the epoch invalidation
// hook intersect against.
func (sr SafeRegion) GuardMBR() geom.MBR {
	return geom.MBR{
		MinX: sr.Center.X - sr.Guard, MinY: sr.Center.Y - sr.Guard,
		MaxX: sr.Center.X + sr.Guard, MaxY: sr.Center.Y + sr.Guard,
	}
}

// MR3Safe is MR3 plus the safe-region computation, under the session's
// default context.
func (s *Session) MR3Safe(q mesh.SurfacePoint, k int, sched Schedule, opt Options) (Result, SafeRegion, error) {
	return s.MR3SafeCtx(nil, q, k, sched, opt)
}

// MR3SafeCtx answers the surface k-NN query exactly like MR3Ctx — the
// Result is bit-identical to what MR3Ctx returns for the same inputs at the
// same epoch — and additionally derives the answer's SafeRegion from the
// final ranker state. The derivation is pure planar geometry over bounds
// the query already computed: no extra I/O, no extra Dijkstra work.
func (s *Session) MR3SafeCtx(ctx context.Context, q mesh.SurfacePoint, k int, sched Schedule, opt Options) (Result, SafeRegion, error) {
	if s.db.store == nil {
		return Result{}, SafeRegion{}, fmt.Errorf("core: no objects installed (call SetObjects)")
	}
	if k < 1 {
		return Result{}, SafeRegion{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	s.beginQuery(ctx, algoMR3)
	ns, err := s.mr3(q, k, sched, opt)
	var sr SafeRegion
	if err == nil {
		sr = s.safeRegion(q, ns)
	}
	res, err := s.endQuery(algoMR3, k, ns, err)
	return res, sr, err
}

// slack is the classification slack reserved per gap: the ranker decides
// in/out with a 1e-9 relative epsilon, so a certified gap must exceed that
// tolerance or a re-query at the perturbed point could settle a tie the
// other way.
func slack(ub float64) float64 { return 1e-9 * (1 + math.Abs(ub)) }

// safeRegion derives the answer's safe region from the final ranker state
// (ns aliases the ranker's results buffer; s.rk.cands still holds every
// candidate with its final bounds and state). Runs between mr3 and
// endQuery, while the query's epoch is still pinned.
func (s *Session) safeRegion(q mesh.SurfacePoint, ns []Neighbor) SafeRegion {
	sr := SafeRegion{Center: q.XY(), Guard: s.step3Radius}
	if len(ns) == 0 {
		return sr
	}
	// Slope stretch of q's face: a degenerate (vertical in projection) face
	// has no usable Lipschitz constant.
	tri := s.db.Mesh.Triangle(q.Face)
	_, _, nz, _ := tri.Plane()
	if math.Abs(nz) < geom.Eps {
		return sr
	}
	stretch := 1 / math.Abs(nz)

	// Clearance: how far the planar point may move before leaving the face
	// (the region the Lipschitz argument is valid on).
	clearance := math.Inf(1)
	a, b, c := tri.A.XY(), tri.B.XY(), tri.C.XY()
	for _, edge := range [3]geom.Segment2{{A: a, B: b}, {A: b, B: c}, {A: c, B: a}} {
		if d := edge.DistToPoint(sr.Center); d < clearance {
			clearance = d
		}
	}
	r := clearance * (1 - 1e-9)

	// Order stability: consecutive result intervals must stay disjoint.
	for i := 0; i+1 < len(ns); i++ {
		if math.IsInf(ns[i].UB, 1) {
			return sr // an unbounded member certifies nothing
		}
		gap := ns[i+1].LB - ns[i].UB - slack(ns[i].UB)
		if t := gap / (2 * stretch); t < r {
			r = t
		}
	}
	ubK := ns[len(ns)-1].UB
	if math.IsInf(ubK, 1) {
		return sr
	}

	// Separation: every enumerated candidate outside the result set must
	// stay strictly behind the k-th. Result membership is checked by ID —
	// k is small, the candidate count is bounded by the step-3 enumeration.
	for i := range s.rk.cands {
		c := &s.rk.cands[i]
		inResult := false
		for j := range ns {
			if ns[j].Object.ID == c.obj.ID {
				inResult = true
				break
			}
		}
		if inResult {
			continue
		}
		gap := c.lb - ubK - slack(ubK)
		if t := gap / (2 * stretch); t < r {
			r = t
		}
	}

	// Unseen objects: planar distance > R3 implies surface distance > R3;
	// after a move of s their distance still exceeds R3 − s, while the k-th
	// bound grows to at most ubK + stretch·s.
	if gap := s.step3Radius - ubK - slack(ubK); true {
		if t := gap / (stretch + 1); t < r {
			r = t
		}
	}

	if !(r > 0) { // also catches NaN from any non-finite arithmetic above
		r = 0
	}
	sr.Radius = r * (1 - 1e-9)
	sr.Guard = s.step3Radius + sr.Radius
	return sr
}

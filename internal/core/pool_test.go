package core

import (
	"sync"
	"testing"

	"surfknn/internal/dem"
)

// TestPooledSessionMatchesOneShot mirrors TestSessionReuseMatchesOneShot
// for the acquire/release pool: queries through checked-out sessions must
// report bit-identical results and page counts to one-shot queries, and a
// released session must actually be reused by the next acquire.
func TestPooledSessionMatchesOneShot(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 50, 7)
	qs := queryPoints(t, db, 4, 11)

	first := db.AcquireSession()
	db.Release(first)
	if again := db.AcquireSession(); again != first {
		t.Errorf("pool did not reuse the released session")
	} else {
		db.Release(again)
	}

	for i, q := range qs {
		oneShot, err := db.MR3(q, 3, S2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s := db.AcquireSession()
		pooled, err := s.MR3(q, 3, S2, Options{})
		db.Release(s)
		if err != nil {
			t.Fatal(err)
		}
		if oneShot.Metrics().Pages != pooled.Metrics().Pages {
			t.Errorf("query %d: one-shot pages %d != pooled pages %d",
				i, oneShot.Metrics().Pages, pooled.Metrics().Pages)
		}
		if len(oneShot.Neighbors) != len(pooled.Neighbors) {
			t.Fatalf("query %d: result sizes differ", i)
		}
		for j := range oneShot.Neighbors {
			a, b := oneShot.Neighbors[j], pooled.Neighbors[j]
			if a.Object.ID != b.Object.ID || a.LB != b.LB || a.UB != b.UB {
				t.Errorf("query %d: neighbour %d differs: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

// TestPoolReleaseResetsTracing pins that per-request settings do not leak
// across checkouts: a session released with tracing on comes back clean.
func TestPoolReleaseResetsTracing(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 30, 9)
	q := queryPoints(t, db, 1, 13)[0]
	s := db.AcquireSession()
	s.SetTracing(true)
	db.Release(s)
	s2 := db.AcquireSession()
	defer db.Release(s2)
	res, err := s2.MR3(q, 3, S1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Errorf("released session kept tracing enabled")
	}
}

// TestPoolConcurrentCheckout hammers acquire/release from many goroutines
// (run under -race by the gate): the pool must hand each goroutine a
// private session and correct answers.
func TestPoolConcurrentCheckout(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 40, 3)
	q := queryPoints(t, db, 1, 5)[0]
	want, err := db.MR3(q, 4, S1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				s := db.AcquireSession()
				res, err := s.MR3(q, 4, S1, Options{})
				db.Release(s)
				if err != nil {
					t.Error(err)
					return
				}
				for j := range want.Neighbors {
					if res.Neighbors[j].Object.ID != want.Neighbors[j].Object.ID {
						t.Errorf("pooled result %d differs", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/obs"
	"surfknn/internal/stats"
)

// TestInstrumentedConcurrentSessions is the registry accuracy gate: many
// sessions query one instrumented TerrainDB concurrently (run under -race by
// the CI gate), and afterwards the process-wide counters must equal the sum
// of the per-query Costs the sessions returned — no lost updates, no double
// counting between the buffer-pool hook and the session hook.
func TestInstrumentedConcurrentSessions(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 60, 17)
	reg := obs.NewRegistry()
	db.Instrument(reg)
	qs := queryPoints(t, db, 4, 19)
	const workers = 8
	const k = 3

	totals := make([]stats.PhaseCost, workers) // per-worker sum of Cost.Total()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession(context.Background())
			sum := &totals[w]
			for i, q := range qs {
				var res Result
				var err error
				if (w+i)%2 == 0 {
					res, err = s.MR3(q, k, S1, Options{})
				} else {
					res, err = s.SurfaceRange(q, db.Mesh.Extent().Width()/4, S2, Options{})
				}
				if err != nil {
					t.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
				tot := res.Cost.Total()
				sum.PoolHits += tot.PoolHits
				sum.PoolMisses += tot.PoolMisses
				sum.RTreeVisits += tot.RTreeVisits
				sum.UpperBounds += tot.UpperBounds
				sum.LowerBounds += tot.LowerBounds
				sum.Iterations += tot.Iterations
			}
		}(w)
	}
	wg.Wait()

	var want stats.PhaseCost
	for _, t2 := range totals {
		want.PoolHits += t2.PoolHits
		want.PoolMisses += t2.PoolMisses
		want.RTreeVisits += t2.RTreeVisits
		want.UpperBounds += t2.UpperBounds
		want.LowerBounds += t2.LowerBounds
		want.Iterations += t2.Iterations
	}
	queries := int64(workers * len(qs))
	if got := reg.QueriesStarted.Value(); got != queries {
		t.Errorf("QueriesStarted = %d, want %d", got, queries)
	}
	if got := reg.QueriesFinished.Value(); got != queries {
		t.Errorf("QueriesFinished = %d, want %d", got, queries)
	}
	if got := reg.PoolHits.Value(); got != want.PoolHits {
		t.Errorf("PoolHits = %d, want %d (sum of per-query costs)", got, want.PoolHits)
	}
	if got := reg.PoolMisses.Value(); got != want.PoolMisses {
		t.Errorf("PoolMisses = %d, want %d", got, want.PoolMisses)
	}
	if got := reg.RTreeVisits.Value(); got != want.RTreeVisits {
		t.Errorf("RTreeVisits = %d, want %d", got, want.RTreeVisits)
	}
	if got := reg.UpperBounds.Value(); got != int64(want.UpperBounds) {
		t.Errorf("UpperBounds = %d, want %d", got, want.UpperBounds)
	}
	if got := reg.LowerBounds.Value(); got != int64(want.LowerBounds) {
		t.Errorf("LowerBounds = %d, want %d", got, want.LowerBounds)
	}
	if got := reg.Iterations.Value(); got != int64(want.Iterations) {
		t.Errorf("Iterations = %d, want %d", got, want.Iterations)
	}
	if got := reg.QueryLatency().Count(); got != queries {
		t.Errorf("latency histogram count = %d, want %d", got, queries)
	}
	if got := reg.DijkstraRelaxations.Value(); got <= 0 {
		t.Errorf("DijkstraRelaxations = %d, want > 0", got)
	}
}

// TestObsNoopKeepsPagesIdentical is the bit-identical guarantee: the same
// query must report exactly the same page counts and results whether or not
// the database is instrumented and whether or not tracing is on — the
// instrumentation observes, it never perturbs.
func TestObsNoopKeepsPagesIdentical(t *testing.T) {
	base := buildDB(t, dem.BH, 16, 50, 7)
	q := queryPoints(t, base, 1, 11)[0]
	plain, err := base.MR3(q, 4, S1, Options{})
	if err != nil {
		t.Fatal(err)
	}

	instr := buildDB(t, dem.BH, 16, 50, 7)
	instr.Instrument(obs.NewRegistry())
	s := instr.NewSession(nil)
	s.SetTracing(true)
	traced, err := s.MR3(q, 4, S1, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if plain.Cost.Pages() != traced.Cost.Pages() {
		t.Errorf("pages differ: plain %d, instrumented+traced %d",
			plain.Cost.Pages(), traced.Cost.Pages())
	}
	if plain.Metrics().Pages != plain.Cost.Pages() {
		t.Errorf("legacy Metrics().Pages %d != Cost.Pages() %d",
			plain.Metrics().Pages, plain.Cost.Pages())
	}
	if len(plain.Neighbors) != len(traced.Neighbors) {
		t.Fatalf("result sizes differ: %d vs %d", len(plain.Neighbors), len(traced.Neighbors))
	}
	for i := range plain.Neighbors {
		if plain.Neighbors[i].Object.ID != traced.Neighbors[i].Object.ID {
			t.Errorf("neighbour %d differs", i)
		}
	}
}

// TestPhaseBreakdown checks the Cost redesign's core claim: the per-phase
// page counters sum to the legacy total, and the MR3 phases appear in the
// paper's step order.
func TestPhaseBreakdown(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 50, 7)
	q := queryPoints(t, db, 1, 5)[0]
	res, err := db.MR3(q, 4, S1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantPhases := []string{stats.PhaseKNN2D, stats.PhaseRankC1, stats.PhaseRange2D, stats.PhaseRankC2}
	if len(res.Cost.Phases) != len(wantPhases) {
		t.Fatalf("got %d phases, want %d: %+v", len(res.Cost.Phases), len(wantPhases), res.Cost.Phases)
	}
	for i, p := range res.Cost.Phases {
		if p.Phase != wantPhases[i] {
			t.Errorf("phase %d = %q, want %q", i, p.Phase, wantPhases[i])
		}
	}
	if step1, ok := res.Cost.Phase(stats.PhaseKNN2D); !ok || step1.RTreeVisits == 0 {
		t.Errorf("knn2d phase missing R-tree visits: %+v", step1)
	}
	var sum int64
	for _, p := range res.Cost.Phases {
		sum += p.Pages()
	}
	if sum != res.Cost.Pages() || sum != res.Metrics().Pages {
		t.Errorf("phase pages %d != Cost.Pages %d / Metrics.Pages %d",
			sum, res.Cost.Pages(), res.Metrics().Pages)
	}
}

// TestTraceRecordsPhasesAndIterations: with tracing on, the Result carries a
// trace whose spans include every phase and the per-iteration spans, and the
// trace round-trips through JSON.
func TestTraceRecordsPhasesAndIterations(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 50, 7)
	q := queryPoints(t, db, 1, 5)[0]
	s := db.NewSession(nil)
	s.SetTracing(true)
	res, err := s.MR3(q, 4, S1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("tracing on but Result.Trace is nil")
	}
	if res.Trace.Algo != "mr3" {
		t.Errorf("trace algo = %q, want mr3", res.Trace.Algo)
	}
	names := make(map[string]int)
	for _, sp := range res.Trace.Spans {
		names[sp.Name]++
	}
	for _, want := range []string{stats.PhaseKNN2D, stats.PhaseRankC1, stats.PhaseRange2D, stats.PhaseRankC2} {
		if names[want] != 1 {
			t.Errorf("trace has %d %q spans, want 1 (spans: %v)", names[want], want, names)
		}
	}
	if names["iter"] == 0 {
		t.Error("trace has no per-iteration spans")
	}
	data, err := res.Trace.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := obs.ParseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != len(res.Trace.Spans) {
		t.Errorf("round-trip lost spans: %d vs %d", len(back.Spans), len(res.Trace.Spans))
	}

	// Tracing off: no trace, and no spans leak between queries.
	s.SetTracing(false)
	res2, err := s.MR3(q, 4, S1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil {
		t.Error("tracing off but Result.Trace is non-nil")
	}
}

// TestSlowQueryLogCapturesTrace: with a slow log installed (threshold 0 =
// everything is slow), each query writes a JSON line that includes its phase
// trace even though the session never enabled tracing.
func TestSlowQueryLogCapturesTrace(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 50, 7)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	reg.SetSlowLog(obs.NewSlowQueryLog(&buf, 0))
	db.Instrument(reg)
	q := queryPoints(t, db, 1, 5)[0]
	res, err := db.NewSession(nil).MR3(q, 3, S1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("slow log is empty")
	}
	var entry obs.SlowQuery
	if err := json.Unmarshal(sc.Bytes(), &entry); err != nil {
		t.Fatalf("slow log line is not JSON: %v", err)
	}
	if entry.Algo != "mr3" || entry.K != 3 {
		t.Errorf("entry = %+v, want algo mr3, k 3", entry)
	}
	if entry.Pages != res.Cost.Pages() {
		t.Errorf("logged pages %d != query pages %d", entry.Pages, res.Cost.Pages())
	}
	if entry.Trace == nil || len(entry.Trace.Spans) == 0 {
		t.Error("slow entry carries no trace")
	}
	if got := reg.SlowQueries.Value(); got != 1 {
		t.Errorf("SlowQueries = %d, want 1", got)
	}
}

// TestPerCallContextOverride: a cancelled per-call context fails only that
// call; the session's default context keeps working afterwards, and the
// registry classifies the cancellation.
func TestPerCallContextOverride(t *testing.T) {
	db := buildDB(t, dem.BH, 16, 30, 9)
	reg := obs.NewRegistry()
	db.Instrument(reg)
	q := queryPoints(t, db, 1, 13)[0]
	s := db.NewSession(context.Background())

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.MR3Ctx(cancelled, q, 3, S1, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MR3Ctx with cancelled ctx: err = %v, want Canceled", err)
	}
	if got := reg.QueriesCancelled.Value(); got != 1 {
		t.Errorf("QueriesCancelled = %d, want 1", got)
	}
	// The override must not stick: the next default-context query succeeds.
	if _, err := s.MR3(q, 3, S1, Options{}); err != nil {
		t.Fatalf("MR3 after per-call cancellation: %v", err)
	}
	if _, err := s.EACtx(cancelled, q, 3); !errors.Is(err, context.Canceled) {
		t.Errorf("EACtx with cancelled ctx: err = %v", err)
	}
	if _, err := s.SurfaceRangeCtx(cancelled, q, 100, S1, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("SurfaceRangeCtx with cancelled ctx: err = %v", err)
	}
	if _, err := s.DistanceWithAccuracyCtx(cancelled, q, db.Objects()[0].Point, 0.7, S2); !errors.Is(err, context.Canceled) {
		t.Errorf("DistanceWithAccuracyCtx with cancelled ctx: err = %v", err)
	}
	if _, _, err := s.ClosestPairCtx(cancelled, S3, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ClosestPairCtx with cancelled ctx: err = %v", err)
	}
	if _, err := s.MR3(q, 3, S1, Options{}); err != nil {
		t.Fatalf("MR3 after all overrides: %v", err)
	}
}

// TestOptionConstructors: the functional constructors express every struct
// setting, including the literal zeros the zero-value encoding reserves.
func TestOptionConstructors(t *testing.T) {
	if o := NewOptions(); o != (Options{}) {
		t.Errorf("NewOptions() = %+v, want zero Options", o)
	}
	o := NewOptions(WithStep2Accuracy(0), WithOverlapThreshold(0)).withDefaults()
	if o.Step2Accuracy != 0 || o.OverlapThreshold != 0 {
		t.Errorf("literal zeros resolved to %+v, want 0/0", o)
	}
	o = NewOptions(WithStep2Accuracy(0.5), WithOverlapThreshold(0.9)).withDefaults()
	if o.Step2Accuracy != 0.5 || o.OverlapThreshold != 0.9 {
		t.Errorf("explicit fractions resolved to %+v", o)
	}
	o = NewOptions()
	if od := o.withDefaults(); od.Step2Accuracy != 0.8 || od.OverlapThreshold != 0.8 {
		t.Errorf("constructor default resolved to %+v, want paper defaults", od)
	}
	o = NewOptions(WithIOIntegration(false), WithDummyLB(false), WithBothFamilyLB(true))
	if !o.DisableIOIntegration || !o.DisableDummyLB || !o.BothFamilyLB {
		t.Errorf("boolean options = %+v", o)
	}
	// Constructor form answers identically to the sentinel struct form.
	db := buildDB(t, dem.BH, 16, 40, 3)
	q := queryPoints(t, db, 1, 5)[0]
	viaStruct, err := db.MR3(q, 4, S1, Options{Step2Accuracy: -1, OverlapThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, err := db.MR3(q, 4, S1, NewOptions(WithStep2Accuracy(0), WithOverlapThreshold(0)))
	if err != nil {
		t.Fatal(err)
	}
	if viaStruct.Cost.Pages() != viaOpts.Cost.Pages() {
		t.Errorf("constructor form pages %d != sentinel form pages %d",
			viaOpts.Cost.Pages(), viaStruct.Cost.Pages())
	}
}

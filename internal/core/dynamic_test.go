package core

import (
	"math"
	"sort"
	"sync"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/mesh"
	"surfknn/internal/obs"
	"surfknn/internal/workload"
)

// Dynamic-object tests: epoch visibility under concurrent updates and the
// objstore-vs-rebuild equivalence fuzz target.

// TestConcurrentReadersUnderUpdates runs 8 reader goroutines querying while
// a writer alternately inserts and deletes a pair of sentinel objects at
// the query point. Epoch consistency means every reader sees both sentinels
// or neither — a torn read would surface exactly one — and each reader's
// Result.Epoch never goes backwards. After the writer quiesces and all pins
// are released, every retired epoch must have been reclaimed. Run under
// -race this also proves the pin/publish protocol is data-race free.
func TestConcurrentReadersUnderUpdates(t *testing.T) {
	db := buildDB(t, dem.BH, 8, 20, 31)
	reg := obs.NewRegistry()
	db.Instrument(reg)
	store := db.ObjectStore()
	store.SetCompactThreshold(3) // force compactions into the race window
	q := queryPoints(t, db, 1, 5)[0]
	sentinels := []workload.Object{
		{ID: 9001, Point: q},
		{ID: 9002, Point: q},
	}

	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.NewSession(nil)
			var lastEpoch uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := sess.MR3(q, 3, S2, Options{})
				if err != nil {
					t.Errorf("reader MR3: %v", err)
					return
				}
				if res.Epoch < lastEpoch {
					t.Errorf("reader epoch went backwards: %d after %d", res.Epoch, lastEpoch)
					return
				}
				lastEpoch = res.Epoch
				saw9001, saw9002 := false, false
				for _, n := range res.Neighbors {
					switch n.Object.ID {
					case 9001:
						saw9001 = true
					case 9002:
						saw9002 = true
					}
				}
				if saw9001 != saw9002 {
					t.Errorf("torn read at epoch %d: sentinel 9001=%v 9002=%v",
						res.Epoch, saw9001, saw9002)
					return
				}
			}
		}()
	}

	for i := 0; i < 100; i++ {
		store.Upsert(sentinels)
		store.Delete([]int64{9001, 9002})
	}
	close(stop)
	wg.Wait()

	if got := store.LiveEpochs(); got != 1 {
		t.Errorf("LiveEpochs after quiesce = %d, want 1", got)
	}
	created, reclaimed := reg.EpochsCreated.Value(), reg.EpochsReclaimed.Value()
	if created != 200 || reclaimed != created {
		t.Errorf("epochs created/reclaimed = %d/%d, want 200/200", created, reclaimed)
	}
}

// eqDB lazily builds the equivalence fixture: two independent TerrainDBs
// over the same deterministic mesh. dyn takes live updates; ref is rebuilt
// statically from the survivors for every comparison.
var eqDB struct {
	once    sync.Once
	dyn     *TerrainDB
	ref     *TerrainDB
	initial []workload.Object
	err     error
}

func getEqDB(t *testing.T) (dyn, ref *TerrainDB, initial []workload.Object) {
	eqDB.once.Do(func() {
		m := mesh.FromGrid(dem.Synthesize(dem.BH, 8, 10, 43))
		if eqDB.dyn, eqDB.err = BuildTerrainDB(m, Config{}); eqDB.err != nil {
			return
		}
		if eqDB.ref, eqDB.err = BuildTerrainDB(m, Config{}); eqDB.err != nil {
			return
		}
		eqDB.initial, eqDB.err = workload.RandomObjects(m, eqDB.dyn.Loc, 8, 7)
	})
	if eqDB.err != nil {
		t.Fatal(eqDB.err)
	}
	return eqDB.dyn, eqDB.ref, eqDB.initial
}

// FuzzObjstoreEquivalence is the dynamic-correctness gate: any interleaving
// of inserts, moves and deletes followed by a k-NN query must produce the
// same answer as rebuilding a fresh static TerrainDB from the surviving
// objects — same result-set IDs (modulo exact ties at the k-th distance)
// and bitwise-equal sorted reference distances. Op stream: byte pairs
// (opcode, param); the compaction threshold also comes from the input so
// both the delta-overlay and freshly-compacted read paths are exercised.
//
// Upper/lower bounds are deliberately NOT compared bit-for-bit: MR3's bound
// refinement is candidate-order dependent, and the merged base+delta
// traversal may legally rank candidates in a different order than the
// rebuilt tree. The decided k-set and the reference metric are the
// order-independent contract.
func FuzzObjstoreEquivalence(f *testing.F) {
	f.Add([]byte{4, 0x00, 10, 0x01, 3, 0x02, 200}, 0.3, 0.7, uint8(3))
	f.Add([]byte{1, 0x01, 0, 0x01, 1, 0x01, 2, 0x01, 3}, 0.5, 0.5, uint8(1))
	f.Add([]byte{2, 0x00, 50, 0x02, 50, 0x01, 0, 0x00, 51}, 0.9, 0.1, uint8(5))
	f.Fuzz(func(t *testing.T, ops []byte, fx, fy float64, kraw uint8) {
		dyn, ref, initial := getEqDB(t)
		q, ok := fuzzQueryPoint(dyn, fx, fy)
		if !ok {
			t.Skip("degenerate query position")
		}
		dyn.SetObjects(initial)
		store := dyn.ObjectStore()
		if len(ops) > 0 {
			store.SetCompactThreshold(1 + int(ops[0])%8)
			ops = ops[1:]
		}
		if len(ops) > 128 {
			ops = ops[:128]
		}
		nextID := int64(1000)
		for i := 0; i+1 < len(ops); i += 2 {
			op, param := ops[i], ops[i+1]
			switch op % 3 {
			case 0: // insert a fresh object at a position derived from param
				p, ok := fuzzQueryPoint(dyn, float64(param)/255, float64(param^0x5a)/255)
				if !ok {
					continue
				}
				store.Upsert([]workload.Object{{ID: nextID, Point: p}})
				nextID++
			case 1: // delete a live object picked by param
				live := dyn.Objects()
				if len(live) == 0 {
					continue
				}
				store.Delete([]int64{live[int(param)%len(live)].ID})
			default: // move a live object picked by param
				live := dyn.Objects()
				if len(live) == 0 {
					continue
				}
				p, ok := fuzzQueryPoint(dyn, float64(param^0xc3)/255, float64(param)/255)
				if !ok {
					continue
				}
				store.Upsert([]workload.Object{{ID: live[int(param)%len(live)].ID, Point: p}})
			}
		}

		survivors := dyn.Objects()
		ref.SetObjects(survivors)
		if len(survivors) == 0 {
			if _, err := dyn.MR3(q, 1, S2, Options{}); err == nil {
				t.Fatal("MR3 over an emptied store should fail to bound")
			}
			return
		}
		k := 1 + int(kraw)%len(survivors)

		resDyn, errDyn := dyn.MR3(q, k, S2, Options{})
		resRef, errRef := ref.MR3(q, k, S2, Options{})
		if (errDyn == nil) != (errRef == nil) {
			t.Fatalf("error divergence: dynamic %v vs rebuilt %v", errDyn, errRef)
		}
		if errDyn != nil {
			return
		}
		if len(resDyn.Neighbors) != len(resRef.Neighbors) {
			t.Fatalf("result sizes differ: %d vs %d", len(resDyn.Neighbors), len(resRef.Neighbors))
		}

		// Bitwise-equal sorted reference distances.
		distOf := func(ns []Neighbor) []float64 {
			out := make([]float64, len(ns))
			for i, n := range ns {
				out[i] = dyn.ReferenceDistance(q, n.Object.Point)
			}
			sort.Float64s(out)
			return out
		}
		dDyn, dRef := distOf(resDyn.Neighbors), distOf(resRef.Neighbors)
		for i := range dDyn {
			if math.Float64bits(dDyn[i]) != math.Float64bits(dRef[i]) {
				t.Fatalf("reference distance %d differs: %x vs %x (%v vs %v)",
					i, math.Float64bits(dDyn[i]), math.Float64bits(dRef[i]), dDyn[i], dRef[i])
			}
		}

		// Same ID sets, except IDs tied exactly at the k-th distance may
		// swap between the two runs.
		kth := dDyn[len(dDyn)-1]
		ids := func(ns []Neighbor) map[int64]bool {
			out := make(map[int64]bool, len(ns))
			for _, n := range ns {
				out[n.Object.ID] = true
			}
			return out
		}
		idsDyn, idsRef := ids(resDyn.Neighbors), ids(resRef.Neighbors)
		for id := range idsDyn {
			if !idsRef[id] {
				o, _ := dyn.Object(id)
				if d := dyn.ReferenceDistance(q, o.Point); d != kth {
					t.Fatalf("object %d (dist %v) only in dynamic result; k-th dist %v", id, d, kth)
				}
			}
		}
		for id := range idsRef {
			if !idsDyn[id] {
				o, ok := ref.Object(id)
				if !ok {
					t.Fatalf("object %d in rebuilt result but not in rebuilt table", id)
				}
				if d := dyn.ReferenceDistance(q, o.Point); d != kth {
					t.Fatalf("object %d (dist %v) only in rebuilt result; k-th dist %v", id, d, kth)
				}
			}
		}
	})
}

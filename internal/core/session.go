package core

import (
	"context"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/pathnet"
	"surfknn/internal/storage"
)

// Session is a per-query execution context over a shared TerrainDB. The
// database's structures (mesh, DDM tree, pathnet, MSDN, paged stores, Dxy)
// are immutable once objects are installed, so any number of sessions can
// query one TerrainDB concurrently; everything mutable lives here:
//
//   - a context.Context checked between refinement iterations, so callers
//     can cancel long queries or impose deadlines;
//   - the page/node access accounting (the paper's "disk pages accessed"
//     metric), kept per query so concurrent queries cannot race on — or
//     pollute — each other's cost numbers;
//   - a pathnet Querier whose Dijkstra scratch is reused across the many
//     surface-distance evaluations one query performs.
//
// A Session is owned by one goroutine at a time (it is not internally
// synchronised) but may be reused for any number of consecutive queries.
// Create one per worker with TerrainDB.NewSession.
type Session struct {
	db   *TerrainDB
	ctx  context.Context
	path *pathnet.Querier

	io        storage.IOAccount // paged terrain reads (DMTM + SDN stores)
	dxyVisits int64             // R-tree node visits (object index)
}

// NewSession creates a query context over the database. ctx bounds every
// query issued through the session (nil means context.Background()).
func (db *TerrainDB) NewSession(ctx context.Context) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Session{db: db, ctx: ctx, path: db.Path.NewQuerier()}
}

// DB returns the shared database the session queries.
func (s *Session) DB() *TerrainDB { return s.db }

// beginQuery resets the per-query accounting. Each top-level query method
// calls it on entry, so a session reused for several queries reports each
// query's cost in isolation — the same numbers the paper's one-query-at-a-
// time harness measured with global counters.
func (s *Session) beginQuery() {
	s.io = storage.IOAccount{}
	s.dxyVisits = 0
}

// pagesAccessed returns this query's combined page-access count:
// buffer-pool accesses for terrain data plus R-tree node visits for object
// data.
func (s *Session) pagesAccessed() int64 {
	return s.io.Accesses + s.dxyVisits
}

// interrupted surfaces context cancellation/deadline between units of work.
func (s *Session) interrupted() error { return s.ctx.Err() }

// fetchDMTM reads the DDM edge records valid at collapse time tm inside
// region through the buffer pool — charged to this session's account — and
// returns their edge indices.
func (s *Session) fetchDMTM(region geom.MBR, tm int32) ([]int32, error) {
	var ids []int32
	err := s.db.dmtmStore.Fetch(region, tm, &s.io, func(r storage.ClusterRecord) {
		ids = append(ids, int32(r.ID))
	})
	return ids, err
}

// fetchSDN reads the SDN segment records of the given ladder level inside
// region. The record payloads mirror the in-memory MSDN (which the lower-
// bound computation uses directly); the fetch exists to account the I/O the
// paper measures.
func (s *Session) fetchSDN(region geom.MBR, level int32) (int, error) {
	n := 0
	err := s.db.sdnStore.Fetch(region, level, &s.io, func(storage.ClusterRecord) { n++ })
	return n, err
}

// referenceDistance is ReferenceDistance evaluated through the session's
// reusable pathnet querier.
func (s *Session) referenceDistance(a, b mesh.SurfacePoint) float64 {
	d, _ := s.path.Distance(a, b)
	return d
}

// MaskedKNN answers the constrained k-NN query (see TerrainDB.MaskedKNN);
// the computation builds private per-query structures, so the session only
// contributes its cancellation context.
func (s *Session) MaskedKNN(q mesh.SurfacePoint, k int, mask FaceMask) ([]Neighbor, error) {
	if err := s.interrupted(); err != nil {
		return nil, err
	}
	return s.db.MaskedKNN(q, k, mask)
}

package core

import (
	"context"
	"errors"
	"time"

	"surfknn/internal/geom"
	"surfknn/internal/index"
	"surfknn/internal/mesh"
	"surfknn/internal/multires"
	"surfknn/internal/objstore"
	"surfknn/internal/obs"
	"surfknn/internal/pathnet"
	"surfknn/internal/sdn"
	"surfknn/internal/stats"
	"surfknn/internal/storage"
	"surfknn/internal/workload"
)

// Session is a per-query execution context over a shared TerrainDB. The
// database's terrain structures (mesh, DDM tree, pathnet, MSDN, paged
// stores) are immutable, and the object set is read through an immutable
// objstore.Epoch pinned per query, so any number of sessions can query one
// TerrainDB concurrently — even while a writer publishes object updates;
// everything mutable lives here:
//
//   - the page/node access accounting (the paper's "disk pages accessed"
//     metric), kept per query so concurrent queries cannot race on — or
//     pollute — each other's cost numbers;
//   - a pathnet Querier whose Dijkstra scratch is reused across the many
//     surface-distance evaluations one query performs;
//   - the per-query cost recorder and (when enabled) phase trace.
//
// Cancellation follows the Go context guidance: a context is not stored
// across queries but passed per call — every query method has a *Ctx
// variant (MR3Ctx, EACtx, ...) taking the controlling context explicitly.
// The context given to NewSession is kept only as the session's default,
// used by the legacy no-context methods; a nil ctx in a *Ctx call selects
// that default.
//
// A Session is owned by one goroutine at a time (it is not internally
// synchronised) but may be reused for any number of consecutive queries.
// Create one per worker with TerrainDB.NewSession.
type Session struct {
	db   *TerrainDB
	base context.Context // session-default context (NewSession argument)
	ctx  context.Context // context of the query in flight; set by beginQuery
	path *pathnet.Querier

	io        storage.IOAccount // paged terrain reads (DMTM + SDN stores)
	dxyVisits int64             // R-tree node visits (object index)
	view      *objstore.Epoch   // pinned object epoch of the query in flight

	tracing bool         // record a phase trace for every query
	cost    costRecorder // per-query phase accounting

	// step3Radius is the MR3 step-3 search radius (the step-2 k-th upper
	// bound) of the query in flight, recorded by mr3 for the safe-region
	// computation (safereg.go). Reset at beginQuery; meaningless for other
	// algorithms.
	step3Radius float64

	// Query-path scratch, retained across queries so a warm session answers
	// without allocating. Capacities are ensured in beginQuery (off the
	// annotated hot path); the per-candidate loops then grow only within
	// capacity. Result buffers handed out by endQuery alias this scratch —
	// see the Result doc for the validity contract.
	rk    ranker              // ranking state: candidate slab + ordering scratch
	items []index.Item        // 2-D index results
	objs  []workload.Object   // resolved candidate objects
	knnSc index.Scratch       // R-tree best-first traversal heaps
	ids   []uint64            // fetched DMTM edge ids
	est   *multires.Estimator // reusable upper-bound network builder
	sdnSc sdn.Scratch         // lower-bound chain DP scratch
	eaSc  eaState             // EA benchmark top-k scratch
}

// NewSession creates a query context over the database. ctx is the
// session's default context, bounding every query issued without a per-call
// override (nil means context.Background()).
func (db *TerrainDB) NewSession(ctx context.Context) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Session{db: db, base: ctx, ctx: ctx, path: db.Path.NewQuerier()}
	if db.Tree != nil {
		s.est = multires.NewEstimator(db.Tree)
		// The refined-region buffer is bounded by the node count of the
		// (immutable) DDM tree, so it is sized once here.
		s.rk.refined = make([]geom.MBR, len(db.Tree.Nodes))
	}
	return s
}

// DB returns the shared database the session queries.
func (s *Session) DB() *TerrainDB { return s.db }

// SetTracing turns per-query phase tracing on or off. While on, every
// Result carries a Trace with one span per query phase and per LOD
// refinement iteration. Traces are also recorded — regardless of this
// switch — while the database's registry has a slow-query log installed,
// so slow entries always include their trace.
func (s *Session) SetTracing(on bool) { s.tracing = on }

// beginQuery resets the per-query accounting and opens the query's cost
// recorder. ctx is the per-call override; nil selects the session default.
// Each top-level query method calls it on entry, so a session reused for
// several queries reports each query's cost in isolation — the same numbers
// the paper's one-query-at-a-time harness measured with global counters.
func (s *Session) beginQuery(ctx context.Context, algo string) {
	if ctx == nil {
		ctx = s.base
	}
	s.ctx = ctx
	s.io = storage.IOAccount{}
	s.dxyVisits = 0
	s.step3Radius = 0
	s.releaseView() // defensive: a panicked query may have left a pin
	if s.db.store != nil {
		s.view = s.db.store.Pin()
		s.ensureScratch(s.view.Len())
	}
	if reg := s.db.reg; reg != nil {
		reg.QueriesStarted.Add(1)
	}
	var tr *obs.Trace
	if s.tracing || s.db.reg.SlowLogArmed() {
		tr = obs.NewTrace(algo)
	}
	s.cost.reset(tr, s.path.Relaxations())
}

// endQuery closes the query: it finalises the phase breakdown into a Cost,
// feeds the process-wide registry (when the database is instrumented), and
// applies the slow-query log. It returns the assembled Result, passing err
// through unchanged.
func (s *Session) endQuery(algo string, k int, ns []Neighbor, err error) (Result, error) {
	s.closePhase()
	cost := s.cost.finish(s)
	s.observe(algo, k, cost, err)
	var epoch uint64
	if s.view != nil {
		epoch = s.view.Seq()
	}
	s.releaseView()
	if err != nil {
		return Result{}, err
	}
	return Result{Neighbors: ns, Cost: cost, Trace: s.cost.trace, Epoch: epoch}, nil
}

// releaseView unpins the query's object epoch, if any.
func (s *Session) releaseView() {
	if s.view != nil {
		s.view.Release()
		s.view = nil
	}
}

// ensureScratch grows the session's query-path buffers to hold n candidates
// (every 2-D filter yields at most the epoch's live object count). It runs
// at query open, keeping all capacity growth off the annotated hot path.
func (s *Session) ensureScratch(n int) {
	if cap(s.items) < n {
		s.items = make([]index.Item, 0, n)
	}
	if cap(s.objs) < n {
		s.objs = make([]workload.Object, 0, n)
	}
	s.rk.ensure(n)
}

// viewObjects resolves R-tree items to objects through the pinned epoch —
// every candidate a query ranks comes from the one version it pinned.
func (s *Session) viewObjects(items []index.Item) []workload.Object {
	return s.viewObjectsInto(items, make([]workload.Object, 0, len(items)))
}

// viewObjectsInto is viewObjects filling dst (truncated first). dst must
// have capacity for every resolved item; the query path passes s.objs,
// sized by ensureScratch.
func (s *Session) viewObjectsInto(items []index.Item, dst []workload.Object) []workload.Object {
	out := dst[:0]
	for _, it := range items {
		if o, ok := s.view.Object(it.ID); ok {
			n := len(out)
			out = out[:n+1]
			out[n] = o
		}
	}
	return out
}

// observe reports one finished query to the instrumented registry and the
// slow-query log. No-op on an uninstrumented database.
func (s *Session) observe(algo string, k int, cost stats.Cost, err error) {
	reg := s.db.reg
	if reg == nil {
		return
	}
	t := cost.Total()
	phases := make([]obs.PhaseObservation, len(cost.Phases))
	for i, p := range cost.Phases {
		phases[i] = obs.PhaseObservation{Name: p.Phase, Wall: p.Wall}
	}
	reg.ObserveQuery(obs.QueryObservation{
		Cancelled:           err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)),
		Failed:              err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded),
		CPU:                 cost.CPU,
		RTreeVisits:         t.RTreeVisits,
		DijkstraRelaxations: s.path.Relaxations() - s.cost.relaxBase,
		UpperBounds:         int64(t.UpperBounds),
		LowerBounds:         int64(t.LowerBounds),
		Iterations:          int64(t.Iterations),
		Phases:              phases,
	})
	sq := obs.SlowQuery{
		Algo:    algo,
		K:       k,
		Elapsed: cost.Elapsed,
		CPU:     cost.CPU,
		Pages:   cost.Pages(),
		Trace:   s.cost.trace,
	}
	if err != nil {
		sq.Err = err.Error()
	}
	reg.MaybeLogSlow(sq)
}

// pagesAccessed returns this query's combined page-access count:
// buffer-pool accesses for terrain data plus R-tree node visits for object
// data.
func (s *Session) pagesAccessed() int64 {
	return s.io.Accesses + s.dxyVisits
}

// interrupted surfaces context cancellation/deadline between units of work.
//
//lint:ignore hotpath-alloc interface call only: stdlib Context.Err implementations allocate nothing
func (s *Session) interrupted() error { return s.ctx.Err() }

// fetchDMTM reads the DDM edge records valid at collapse time tm inside
// region through the buffer pool — charged to this session's account — and
// returns their edge indices. The returned slice is session scratch, valid
// until the next fetch.
func (s *Session) fetchDMTM(region geom.MBR, tm int32) ([]uint64, error) {
	var err error
	s.ids, err = s.db.dmtmStore.FetchIDs(region, tm, &s.io, s.ids[:0])
	return s.ids, err
}

// fetchSDN reads the SDN segment records of the given ladder level inside
// region. The record payloads mirror the in-memory MSDN (which the lower-
// bound computation uses directly); the fetch exists to account the I/O the
// paper measures.
func (s *Session) fetchSDN(region geom.MBR, level int32) (int, error) {
	return s.db.sdnStore.FetchCount(region, level, &s.io)
}

// referenceDistance is ReferenceDistance evaluated through the session's
// reusable pathnet querier.
func (s *Session) referenceDistance(a, b mesh.SurfacePoint) float64 {
	return s.path.DistanceValue(a, b)
}

// MaskedKNN answers the constrained k-NN query (see TerrainDB.MaskedKNN)
// under the session's default context.
func (s *Session) MaskedKNN(q mesh.SurfacePoint, k int, mask FaceMask) ([]Neighbor, error) {
	return s.MaskedKNNCtx(nil, q, k, mask)
}

// MaskedKNNCtx is MaskedKNN bounded by a per-call context (nil selects the
// session default). The computation builds private per-query structures, so
// the session contributes only cancellation and lifecycle accounting.
func (s *Session) MaskedKNNCtx(ctx context.Context, q mesh.SurfacePoint, k int, mask FaceMask) ([]Neighbor, error) {
	s.beginQuery(ctx, algoMasked)
	var ns []Neighbor
	err := s.interrupted()
	if err == nil {
		ns, err = s.db.maskedKNN(s.view, q, k, mask)
	}
	_, err2 := s.endQuery(algoMasked, k, ns, err)
	return ns, err2
}

// Algorithm labels used for traces, the slow-query log and registry
// accounting.
const (
	algoMR3      = "mr3"
	algoEA       = "ea"
	algoRange    = "range"
	algoMasked   = "masked"
	algoAccuracy = "accuracy"
	algoRank     = "rank"
)

// costRecorder assembles a query's per-phase cost breakdown. It lives
// inside a Session (one query at a time), so it is single-goroutine by
// construction.
type costRecorder struct {
	trace     *obs.Trace
	phases    []stats.PhaseCost
	cur       stats.PhaseCost // open phase, valid while open; reused in place
	open      bool
	curSpan   obs.SpanID
	curStart  time.Time
	baseIO    storage.IOAccount // session I/O counters at phase open
	baseVisit int64             // session R-tree visits at phase open
	baseRelax int64             // pathnet relaxation count at phase open
	qStart    time.Time         // query start
	relaxBase int64             // pathnet relaxation count at query start
}

// reset opens a new query's recording. The phases buffer is truncated, not
// reallocated — the previous query's Cost.Phases (which aliases it) becomes
// invalid here, per the Result validity contract.
func (c *costRecorder) reset(tr *obs.Trace, relaxBase int64) {
	c.trace = tr
	c.phases = c.phases[:0]
	c.open = false
	c.qStart = time.Now()
	c.relaxBase = relaxBase
}

// beginPhase closes any open phase and opens a named one. The returned
// pointer stays valid until the phase is closed; the ranking code
// accumulates its work counters through it.
func (s *Session) beginPhase(name string) *stats.PhaseCost {
	s.closePhase()
	c := &s.cost
	c.cur = stats.PhaseCost{Phase: name}
	c.open = true
	c.baseIO = s.io
	c.baseVisit = s.dxyVisits
	c.baseRelax = s.path.Relaxations()
	c.curStart = time.Now()
	c.curSpan = c.trace.StartSpan(name, nil)
	return &c.cur
}

// closePhase seals the open phase, charging it the I/O performed since it
// opened. No-op when no phase is open.
func (s *Session) closePhase() {
	c := &s.cost
	if !c.open {
		return
	}
	c.cur.Wall = time.Since(c.curStart)
	c.cur.PoolMisses = s.io.Misses - c.baseIO.Misses
	c.cur.PoolHits = (s.io.Accesses - c.baseIO.Accesses) - c.cur.PoolMisses
	c.cur.RTreeVisits = s.dxyVisits - c.baseVisit
	c.cur.Relaxations = s.path.Relaxations() - c.baseRelax
	c.phases = append(c.phases, c.cur)
	c.trace.EndSpan(c.curSpan)
	c.open = false
}

// curPhase returns the open phase's counters (the ranking code's
// accumulation target). Query methods always open a phase before ranking;
// nil between phases, as before the phase slot became reusable.
func (s *Session) curPhase() *stats.PhaseCost {
	if !s.cost.open {
		return nil
	}
	return &s.cost.cur
}

// startSpan opens an extra trace span inside the current phase (used for
// per-iteration spans); no-op without a trace.
func (s *Session) startSpan(name string, attrs map[string]float64) obs.SpanID {
	return s.cost.trace.StartSpan(name, attrs)
}

// endSpan closes a span opened by startSpan.
func (s *Session) endSpan(id obs.SpanID) { s.cost.trace.EndSpan(id) }

// finish computes the query's Cost from the recorded phases: CPU is the
// wall time since beginQuery, Elapsed adds the simulated I/O cost of every
// page accessed (the paper's response-time model).
func (c *costRecorder) finish(s *Session) stats.Cost {
	cost := stats.Cost{
		// Phases aliases the recorder's buffer; the next query on this
		// session truncates it (see Result for the validity contract).
		Phases: c.phases,
		CPU:    time.Since(c.qStart),
	}
	cost.Elapsed = cost.CPU + time.Duration(s.pagesAccessed())*s.db.cfg.PageCost
	return cost
}

package core

import (
	"context"
	"errors"
	"time"

	"surfknn/internal/geom"
	"surfknn/internal/index"
	"surfknn/internal/mesh"
	"surfknn/internal/objstore"
	"surfknn/internal/obs"
	"surfknn/internal/pathnet"
	"surfknn/internal/stats"
	"surfknn/internal/storage"
	"surfknn/internal/workload"
)

// Session is a per-query execution context over a shared TerrainDB. The
// database's terrain structures (mesh, DDM tree, pathnet, MSDN, paged
// stores) are immutable, and the object set is read through an immutable
// objstore.Epoch pinned per query, so any number of sessions can query one
// TerrainDB concurrently — even while a writer publishes object updates;
// everything mutable lives here:
//
//   - the page/node access accounting (the paper's "disk pages accessed"
//     metric), kept per query so concurrent queries cannot race on — or
//     pollute — each other's cost numbers;
//   - a pathnet Querier whose Dijkstra scratch is reused across the many
//     surface-distance evaluations one query performs;
//   - the per-query cost recorder and (when enabled) phase trace.
//
// Cancellation follows the Go context guidance: a context is not stored
// across queries but passed per call — every query method has a *Ctx
// variant (MR3Ctx, EACtx, ...) taking the controlling context explicitly.
// The context given to NewSession is kept only as the session's default,
// used by the legacy no-context methods; a nil ctx in a *Ctx call selects
// that default.
//
// A Session is owned by one goroutine at a time (it is not internally
// synchronised) but may be reused for any number of consecutive queries.
// Create one per worker with TerrainDB.NewSession.
type Session struct {
	db   *TerrainDB
	base context.Context // session-default context (NewSession argument)
	ctx  context.Context // context of the query in flight; set by beginQuery
	path *pathnet.Querier

	io        storage.IOAccount // paged terrain reads (DMTM + SDN stores)
	dxyVisits int64             // R-tree node visits (object index)
	view      *objstore.Epoch   // pinned object epoch of the query in flight

	tracing bool         // record a phase trace for every query
	cost    costRecorder // per-query phase accounting
}

// NewSession creates a query context over the database. ctx is the
// session's default context, bounding every query issued without a per-call
// override (nil means context.Background()).
func (db *TerrainDB) NewSession(ctx context.Context) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Session{db: db, base: ctx, ctx: ctx, path: db.Path.NewQuerier()}
}

// DB returns the shared database the session queries.
func (s *Session) DB() *TerrainDB { return s.db }

// SetTracing turns per-query phase tracing on or off. While on, every
// Result carries a Trace with one span per query phase and per LOD
// refinement iteration. Traces are also recorded — regardless of this
// switch — while the database's registry has a slow-query log installed,
// so slow entries always include their trace.
func (s *Session) SetTracing(on bool) { s.tracing = on }

// beginQuery resets the per-query accounting and opens the query's cost
// recorder. ctx is the per-call override; nil selects the session default.
// Each top-level query method calls it on entry, so a session reused for
// several queries reports each query's cost in isolation — the same numbers
// the paper's one-query-at-a-time harness measured with global counters.
func (s *Session) beginQuery(ctx context.Context, algo string) {
	if ctx == nil {
		ctx = s.base
	}
	s.ctx = ctx
	s.io = storage.IOAccount{}
	s.dxyVisits = 0
	s.releaseView() // defensive: a panicked query may have left a pin
	if s.db.store != nil {
		s.view = s.db.store.Pin()
	}
	if reg := s.db.reg; reg != nil {
		reg.QueriesStarted.Add(1)
	}
	var tr *obs.Trace
	if s.tracing || s.db.reg.SlowLogArmed() {
		tr = obs.NewTrace(algo)
	}
	s.cost.reset(tr, s.path.Relaxations())
}

// endQuery closes the query: it finalises the phase breakdown into a Cost,
// feeds the process-wide registry (when the database is instrumented), and
// applies the slow-query log. It returns the assembled Result, passing err
// through unchanged.
func (s *Session) endQuery(algo string, k int, ns []Neighbor, err error) (Result, error) {
	s.closePhase()
	cost := s.cost.finish(s)
	s.observe(algo, k, cost, err)
	var epoch uint64
	if s.view != nil {
		epoch = s.view.Seq()
	}
	s.releaseView()
	if err != nil {
		return Result{}, err
	}
	return Result{Neighbors: ns, Cost: cost, Trace: s.cost.trace, Epoch: epoch}, nil
}

// releaseView unpins the query's object epoch, if any.
func (s *Session) releaseView() {
	if s.view != nil {
		s.view.Release()
		s.view = nil
	}
}

// viewObjects resolves R-tree items to objects through the pinned epoch —
// every candidate a query ranks comes from the one version it pinned.
func (s *Session) viewObjects(items []index.Item) []workload.Object {
	out := make([]workload.Object, 0, len(items))
	for _, it := range items {
		if o, ok := s.view.Object(it.ID); ok {
			out = append(out, o)
		}
	}
	return out
}

// observe reports one finished query to the instrumented registry and the
// slow-query log. No-op on an uninstrumented database.
func (s *Session) observe(algo string, k int, cost stats.Cost, err error) {
	reg := s.db.reg
	if reg == nil {
		return
	}
	t := cost.Total()
	phases := make([]obs.PhaseObservation, len(cost.Phases))
	for i, p := range cost.Phases {
		phases[i] = obs.PhaseObservation{Name: p.Phase, Wall: p.Wall}
	}
	reg.ObserveQuery(obs.QueryObservation{
		Cancelled:           err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)),
		Failed:              err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded),
		CPU:                 cost.CPU,
		RTreeVisits:         t.RTreeVisits,
		DijkstraRelaxations: s.path.Relaxations() - s.cost.relaxBase,
		UpperBounds:         int64(t.UpperBounds),
		LowerBounds:         int64(t.LowerBounds),
		Iterations:          int64(t.Iterations),
		Phases:              phases,
	})
	sq := obs.SlowQuery{
		Algo:    algo,
		K:       k,
		Elapsed: cost.Elapsed,
		CPU:     cost.CPU,
		Pages:   cost.Pages(),
		Trace:   s.cost.trace,
	}
	if err != nil {
		sq.Err = err.Error()
	}
	reg.MaybeLogSlow(sq)
}

// pagesAccessed returns this query's combined page-access count:
// buffer-pool accesses for terrain data plus R-tree node visits for object
// data.
func (s *Session) pagesAccessed() int64 {
	return s.io.Accesses + s.dxyVisits
}

// interrupted surfaces context cancellation/deadline between units of work.
func (s *Session) interrupted() error { return s.ctx.Err() }

// fetchDMTM reads the DDM edge records valid at collapse time tm inside
// region through the buffer pool — charged to this session's account — and
// returns their edge indices.
func (s *Session) fetchDMTM(region geom.MBR, tm int32) ([]int32, error) {
	var ids []int32
	err := s.db.dmtmStore.Fetch(region, tm, &s.io, func(r storage.ClusterRecord) {
		ids = append(ids, int32(r.ID))
	})
	return ids, err
}

// fetchSDN reads the SDN segment records of the given ladder level inside
// region. The record payloads mirror the in-memory MSDN (which the lower-
// bound computation uses directly); the fetch exists to account the I/O the
// paper measures.
func (s *Session) fetchSDN(region geom.MBR, level int32) (int, error) {
	n := 0
	err := s.db.sdnStore.Fetch(region, level, &s.io, func(storage.ClusterRecord) { n++ })
	return n, err
}

// referenceDistance is ReferenceDistance evaluated through the session's
// reusable pathnet querier.
func (s *Session) referenceDistance(a, b mesh.SurfacePoint) float64 {
	d, _ := s.path.Distance(a, b)
	return d
}

// MaskedKNN answers the constrained k-NN query (see TerrainDB.MaskedKNN)
// under the session's default context.
func (s *Session) MaskedKNN(q mesh.SurfacePoint, k int, mask FaceMask) ([]Neighbor, error) {
	return s.MaskedKNNCtx(nil, q, k, mask)
}

// MaskedKNNCtx is MaskedKNN bounded by a per-call context (nil selects the
// session default). The computation builds private per-query structures, so
// the session contributes only cancellation and lifecycle accounting.
func (s *Session) MaskedKNNCtx(ctx context.Context, q mesh.SurfacePoint, k int, mask FaceMask) ([]Neighbor, error) {
	s.beginQuery(ctx, algoMasked)
	var ns []Neighbor
	err := s.interrupted()
	if err == nil {
		ns, err = s.db.maskedKNN(s.view, q, k, mask)
	}
	_, err2 := s.endQuery(algoMasked, k, ns, err)
	return ns, err2
}

// Algorithm labels used for traces, the slow-query log and registry
// accounting.
const (
	algoMR3      = "mr3"
	algoEA       = "ea"
	algoRange    = "range"
	algoMasked   = "masked"
	algoAccuracy = "accuracy"
)

// costRecorder assembles a query's per-phase cost breakdown. It lives
// inside a Session (one query at a time), so it is single-goroutine by
// construction.
type costRecorder struct {
	trace     *obs.Trace
	phases    []stats.PhaseCost
	cur       *stats.PhaseCost // open phase; nil between phases
	curSpan   obs.SpanID
	curStart  time.Time
	baseIO    storage.IOAccount // session I/O counters at phase open
	baseVisit int64             // session R-tree visits at phase open
	qStart    time.Time         // query start
	relaxBase int64             // pathnet relaxation count at query start
}

// reset opens a new query's recording.
func (c *costRecorder) reset(tr *obs.Trace, relaxBase int64) {
	c.trace = tr
	c.phases = c.phases[:0]
	c.cur = nil
	c.qStart = time.Now()
	c.relaxBase = relaxBase
}

// beginPhase closes any open phase and opens a named one. The returned
// pointer stays valid until the phase is closed; the ranking code
// accumulates its work counters through it.
func (s *Session) beginPhase(name string) *stats.PhaseCost {
	s.closePhase()
	c := &s.cost
	c.cur = &stats.PhaseCost{Phase: name}
	c.baseIO = s.io
	c.baseVisit = s.dxyVisits
	c.curStart = time.Now()
	c.curSpan = c.trace.StartSpan(name, nil)
	return c.cur
}

// closePhase seals the open phase, charging it the I/O performed since it
// opened. No-op when no phase is open.
func (s *Session) closePhase() {
	c := &s.cost
	if c.cur == nil {
		return
	}
	c.cur.Wall = time.Since(c.curStart)
	c.cur.PoolMisses = s.io.Misses - c.baseIO.Misses
	c.cur.PoolHits = (s.io.Accesses - c.baseIO.Accesses) - c.cur.PoolMisses
	c.cur.RTreeVisits = s.dxyVisits - c.baseVisit
	c.phases = append(c.phases, *c.cur)
	c.trace.EndSpan(c.curSpan)
	c.cur = nil
}

// curPhase returns the open phase's counters (the ranking code's
// accumulation target). Query methods always open a phase before ranking.
func (s *Session) curPhase() *stats.PhaseCost { return s.cost.cur }

// startSpan opens an extra trace span inside the current phase (used for
// per-iteration spans); no-op without a trace.
func (s *Session) startSpan(name string, attrs map[string]float64) obs.SpanID {
	return s.cost.trace.StartSpan(name, attrs)
}

// endSpan closes a span opened by startSpan.
func (s *Session) endSpan(id obs.SpanID) { s.cost.trace.EndSpan(id) }

// finish computes the query's Cost from the recorded phases: CPU is the
// wall time since beginQuery, Elapsed adds the simulated I/O cost of every
// page accessed (the paper's response-time model).
func (c *costRecorder) finish(s *Session) stats.Cost {
	cost := stats.Cost{
		Phases: append([]stats.PhaseCost(nil), c.phases...),
		CPU:    time.Since(c.qStart),
	}
	cost.Elapsed = cost.CPU + time.Duration(s.pagesAccessed())*s.db.cfg.PageCost
	return cost
}

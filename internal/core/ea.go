package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/stats"
	"surfknn/internal/workload"
)

// EA answers the query with the Enhanced Approximation benchmark of §5.2
// under the session's default context: the same filter pipeline as MR3
// (2-D k-NN → range query → ranking) and the same search-region techniques,
// but every surface distance is computed at full resolution — original mesh
// plus pathnet for the distance itself, the 100% SDN for the lower-bound
// filter. Lacking the multiresolution ladder, it fetches fine terrain data
// over large regions and runs the Kanai–Suzuki computation per candidate,
// which is what Figs. 10–11 show blowing up against MR3.
func (s *Session) EA(q mesh.SurfacePoint, k int) (Result, error) {
	return s.EACtx(nil, q, k)
}

// EACtx is EA bounded by a per-call context: ctx cancels or deadlines this
// query only (nil selects the session's default context).
func (s *Session) EACtx(ctx context.Context, q mesh.SurfacePoint, k int) (Result, error) {
	if s.db.store == nil {
		return Result{}, fmt.Errorf("core: no objects installed (call SetObjects)")
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	s.beginQuery(ctx, algoEA)
	s.eaSc.ensure(k)
	ns, err := s.ea(q, k)
	return s.endQuery(algoEA, k, ns, err)
}

// eaState is the EA benchmark's retained per-session scratch: the running
// top-k slab and the id snapshot of step 2's winners (step 4's dedup set —
// snapshotted, not live, so a candidate later pushed out of the top is
// still skipped, exactly as the old map-based dedup behaved).
type eaState struct {
	top  []eaScored
	seen []int64
}

type eaScored struct {
	obj workload.Object
	d   float64
}

// ensure grows the slabs for a k-neighbour query; runs at query entry, off
// the annotated hot path.
func (e *eaState) ensure(k int) {
	if cap(e.top) < k+1 {
		e.top = make([]eaScored, 0, k+1)
	}
	if cap(e.seen) < k {
		e.seen = make([]int64, 0, k)
	}
}

// push inserts (o, d) into the ascending top list — a stable insertion in
// place of the old append+sort.Slice — truncates it to k, and returns the
// running k-th distance (+Inf while fewer than k are held).
func (e *eaState) push(o workload.Object, d float64, k int) float64 {
	n := len(e.top)
	e.top = e.top[:n+1]
	i := n
	for i > 0 && e.top[i-1].d > d {
		e.top[i] = e.top[i-1]
		i--
	}
	e.top[i] = eaScored{obj: o, d: d}
	if len(e.top) > k {
		e.top = e.top[:k]
	}
	if len(e.top) == k {
		return e.top[k-1].d
	}
	return math.Inf(1)
}

// eaDistFull computes one exact (full-resolution) surface distance for the
// EA benchmark, fetching the full-LOD terrain pages of the search region
// first. A failed fetch must abort the query: pretending it succeeded would
// let an unpaid I/O bill produce a distance that looks valid.
func (s *Session) eaDistFull(q mesh.SurfacePoint, o workload.Object, bound float64, fullLevel int32) (float64, error) {
	db := s.db
	region := db.Mesh.Extent()
	if !math.IsInf(bound, 1) {
		if m := geom.NewEllipse(q.XY(), o.Point.XY(), bound).MBR(); !m.IsEmpty() {
			region = m
		}
	}
	if _, err := s.fetchDMTM(region, 0); err != nil {
		//lint:ignore hotpath-alloc error path: allocates only when a terrain fetch fails, never on a successful query
		return 0, fmt.Errorf("core: EA terrain fetch: %w", err)
	}
	if _, err := s.fetchSDN(region, fullLevel); err != nil {
		//lint:ignore hotpath-alloc error path: allocates only when a terrain fetch fails, never on a successful query
		return 0, fmt.Errorf("core: EA SDN fetch: %w", err)
	}
	s.curPhase().UpperBounds++
	d := s.path.DistanceWithin(q, o.Point, region)
	if math.IsInf(d, 1) {
		// The ellipse clipped every path; retry on the unclipped network
		// (value-only: the polyline is not needed). If no path exists at
		// all, the +Inf distance propagates to the bound check at the call
		// site instead of masquerading as a finite bound.
		d = s.path.DistanceValue(q, o.Point)
	}
	return d, nil
}

// sortObjsByDist2 orders the candidates by squared 3-D distance to q with a
// stable insertion sort (the allocation-free replacement for sort.Slice;
// candidate sets are small).
func sortObjsByDist2(q mesh.SurfacePoint, objs []workload.Object) {
	for i := 1; i < len(objs); i++ {
		o := objs[i]
		d := q.Pos.Dist2(o.Point.Pos)
		j := i - 1
		for j >= 0 && q.Pos.Dist2(objs[j].Point.Pos) > d {
			objs[j+1] = objs[j]
			j--
		}
		objs[j+1] = o
	}
}

// idIn reports whether id occurs in ids (linear scan; the set holds at most
// k entries).
func idIn(ids []int64, id int64) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// ea runs the benchmark's four steps, phased the same way as MR3 so cost
// breakdowns of the two algorithms line up phase by phase.
//
//sklint:hotpath
func (s *Session) ea(q mesh.SurfacePoint, k int) ([]Neighbor, error) {
	db := s.db
	if err := s.interrupted(); err != nil {
		return nil, err
	}
	fullLevel := SDNLevel(1.0)
	e := &s.eaSc
	e.top = e.top[:0]

	// Step 1: 2-D k-NN filter.
	s.beginPhase(stats.PhaseKNN2D)
	s.items = s.view.KNNInto(q.XY(), k, &s.dxyVisits, &s.knnSc, s.items[:0])
	s.objs = s.viewObjectsInto(s.items, s.objs)
	s.curPhase().Candidates += len(s.objs)

	// Step 2: exact (full-resolution) surface distances for C1. The first
	// candidate has no bound yet and searches the entire terrain; later
	// candidates reuse the running k-th distance as their ellipse bound
	// (the expansion strategy of [2] the paper adopts for fairness).
	s.beginPhase(stats.PhaseRankC1)
	kth := math.Inf(1)
	for _, o := range s.objs {
		d, err := s.eaDistFull(q, o, kth, fullLevel)
		if err != nil {
			return nil, err
		}
		kth = e.push(o, d, k)
	}
	if math.IsInf(kth, 1) {
		//lint:ignore hotpath-alloc error path: allocates only when no k-th bound exists, never on a successful query
		return nil, fmt.Errorf("core: could not bound the %d-th neighbour", k)
	}

	// Step 3: 2-D range query with the k-th distance as radius.
	s.beginPhase(stats.PhaseRange2D)
	s.items = s.view.WithinDistInto(q.XY(), kth, &s.dxyVisits, s.items[:0])
	s.objs = s.viewObjectsInto(s.items, s.objs)
	s.curPhase().Candidates += len(s.objs)

	// Step 4: verify every candidate, cheapest (by Euclidean distance)
	// first so the k-th bound shrinks early; the 100% SDN lower bound
	// prunes candidates without the expensive computation.
	s.beginPhase(stats.PhaseRankC2)
	sortObjsByDist2(q, s.objs)
	e.seen = e.seen[:0]
	for _, sc := range e.top {
		n := len(e.seen)
		e.seen = e.seen[:n+1]
		e.seen[n] = sc.obj.ID
	}
	for _, o := range s.objs {
		if err := s.interrupted(); err != nil {
			return nil, err
		}
		if idIn(e.seen, o.ID) {
			continue
		}
		region := db.Mesh.Extent()
		if m := geom.NewEllipse(q.XY(), o.Point.XY(), kth).MBR(); !m.IsEmpty() {
			region = m
		}
		s.curPhase().LowerBounds++
		lb := db.MSDN.LowerBoundScratch(&s.sdnSc, q.Pos, o.Point.Pos, region, 1.0)
		if _, err := s.fetchSDN(region, fullLevel); err != nil {
			//lint:ignore hotpath-alloc error path: allocates only when a terrain fetch fails, never on a successful query
			return nil, fmt.Errorf("core: EA SDN fetch: %w", err)
		}
		if lb.LB > kth {
			continue // filtered: cannot beat the current k-th neighbour
		}
		d, err := s.eaDistFull(q, o, kth, fullLevel)
		if err != nil {
			return nil, err
		}
		kth = e.push(o, d, k)
	}

	out := s.rk.resultsBuf[:len(e.top)]
	for i, sc := range e.top {
		out[i] = Neighbor{Object: sc.obj, LB: sc.d, UB: sc.d}
	}
	return out, nil
}

// EA is the one-shot convenience form: it runs the benchmark query in a
// fresh throwaway session.
func (db *TerrainDB) EA(q mesh.SurfacePoint, k int) (Result, error) {
	return db.NewSession(nil).EA(q, k)
}

// BruteForce ranks every object by the reference surface distance — the
// oracle used by tests and, on small inputs, sanity checks. It bypasses the
// paged stores (no page accounting) but still pins one epoch so the scan
// sees a consistent object version under concurrent updates.
func (s *Session) BruteForce(q mesh.SurfacePoint, k int) []Neighbor {
	db := s.db
	type scored struct {
		obj workload.Object
		d   float64
	}
	var table []workload.Object
	if db.store != nil {
		e := db.store.Pin()
		table = e.Table()
		e.Release() // Table() is an immutable snapshot; safe after release
	}
	all := make([]scored, 0, len(table))
	for _, o := range table {
		all = append(all, scored{o, s.referenceDistance(q, o.Point)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	if k > len(all) {
		k = len(all)
	}
	out := make([]Neighbor, k)
	for i := 0; i < k; i++ {
		out[i] = Neighbor{Object: all[i].obj, LB: all[i].d, UB: all[i].d}
	}
	return out
}

// BruteForce is the one-shot convenience form over a throwaway session.
func (db *TerrainDB) BruteForce(q mesh.SurfacePoint, k int) []Neighbor {
	return db.NewSession(nil).BruteForce(q, k)
}

package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/stats"
	"surfknn/internal/workload"
)

// EA answers the query with the Enhanced Approximation benchmark of §5.2
// under the session's default context: the same filter pipeline as MR3
// (2-D k-NN → range query → ranking) and the same search-region techniques,
// but every surface distance is computed at full resolution — original mesh
// plus pathnet for the distance itself, the 100% SDN for the lower-bound
// filter. Lacking the multiresolution ladder, it fetches fine terrain data
// over large regions and runs the Kanai–Suzuki computation per candidate,
// which is what Figs. 10–11 show blowing up against MR3.
func (s *Session) EA(q mesh.SurfacePoint, k int) (Result, error) {
	return s.EACtx(nil, q, k)
}

// EACtx is EA bounded by a per-call context: ctx cancels or deadlines this
// query only (nil selects the session's default context).
func (s *Session) EACtx(ctx context.Context, q mesh.SurfacePoint, k int) (Result, error) {
	if s.db.store == nil {
		return Result{}, fmt.Errorf("core: no objects installed (call SetObjects)")
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	s.beginQuery(ctx, algoEA)
	ns, err := s.ea(q, k)
	return s.endQuery(algoEA, k, ns, err)
}

// ea runs the benchmark's four steps, phased the same way as MR3 so cost
// breakdowns of the two algorithms line up phase by phase.
//
//sklint:hotpath
func (s *Session) ea(q mesh.SurfacePoint, k int) ([]Neighbor, error) {
	db := s.db
	if err := s.interrupted(); err != nil {
		return nil, err
	}
	fullLevel := SDNLevel(1.0)

	// Step 1: 2-D k-NN filter.
	s.beginPhase(stats.PhaseKNN2D)
	c1 := s.viewObjects(s.view.KNN(q.XY(), k, &s.dxyVisits))
	s.curPhase().Candidates += len(c1)

	// Step 2: exact (full-resolution) surface distances for C1. The first
	// candidate has no bound yet and searches the entire terrain; later
	// candidates reuse the running k-th distance as their ellipse bound
	// (the expansion strategy of [2] the paper adopts for fairness).
	s.beginPhase(stats.PhaseRankC1)
	type scored struct {
		obj workload.Object
		d   float64
	}
	var top []scored
	kth := math.Inf(1)
	distFull := func(o workload.Object, bound float64) (float64, error) {
		region := db.Mesh.Extent()
		if !math.IsInf(bound, 1) {
			if m := geom.NewEllipse(q.XY(), o.Point.XY(), bound).MBR(); !m.IsEmpty() {
				region = m
			}
		}
		// Full-resolution terrain fetch for the search region. A failed
		// fetch must abort the query: pretending it succeeded would let an
		// unpaid I/O bill produce a distance that looks valid.
		if _, err := s.fetchDMTM(region, 0); err != nil {
			return 0, fmt.Errorf("core: EA terrain fetch: %w", err)
		}
		if _, err := s.fetchSDN(region, fullLevel); err != nil {
			return 0, fmt.Errorf("core: EA SDN fetch: %w", err)
		}
		s.curPhase().UpperBounds++
		d := s.path.DistanceWithin(q, o.Point, region)
		if math.IsInf(d, 1) {
			// The ellipse clipped every path; retry on the unclipped
			// network. The discarded second result is the path polyline,
			// not an error — if no path exists at all, the +Inf distance
			// propagates to the bound check below instead of masquerading
			// as a finite bound.
			d, _ = s.path.Distance(q, o.Point)
		}
		return d, nil
	}
	push := func(o workload.Object, d float64) {
		top = append(top, scored{o, d})
		sort.Slice(top, func(i, j int) bool { return top[i].d < top[j].d })
		if len(top) > k {
			top = top[:k]
		}
		if len(top) == k {
			kth = top[k-1].d
		}
	}
	for _, o := range c1 {
		d, err := distFull(o, kth)
		if err != nil {
			return nil, err
		}
		push(o, d)
	}
	if math.IsInf(kth, 1) {
		return nil, fmt.Errorf("core: could not bound the %d-th neighbour", k)
	}

	// Step 3: 2-D range query with the k-th distance as radius.
	s.beginPhase(stats.PhaseRange2D)
	c2 := s.viewObjects(s.view.WithinDist(q.XY(), kth, &s.dxyVisits))
	s.curPhase().Candidates += len(c2)

	// Step 4: verify every candidate, cheapest (by Euclidean distance)
	// first so the k-th bound shrinks early; the 100% SDN lower bound
	// prunes candidates without the expensive computation.
	s.beginPhase(stats.PhaseRankC2)
	sort.Slice(c2, func(i, j int) bool {
		return q.Pos.Dist2(c2[i].Point.Pos) < q.Pos.Dist2(c2[j].Point.Pos)
	})
	seen := make(map[int64]bool, len(top))
	for _, sc := range top {
		seen[sc.obj.ID] = true
	}
	for _, o := range c2 {
		if err := s.interrupted(); err != nil {
			return nil, err
		}
		if seen[o.ID] {
			continue
		}
		region := db.Mesh.Extent()
		if m := geom.NewEllipse(q.XY(), o.Point.XY(), kth).MBR(); !m.IsEmpty() {
			region = m
		}
		s.curPhase().LowerBounds++
		lb := db.MSDN.LowerBound(q.Pos, o.Point.Pos, region, 1.0)
		if _, err := s.fetchSDN(region, fullLevel); err != nil {
			return nil, fmt.Errorf("core: EA SDN fetch: %w", err)
		}
		if lb.LB > kth {
			continue // filtered: cannot beat the current k-th neighbour
		}
		d, err := distFull(o, kth)
		if err != nil {
			return nil, err
		}
		push(o, d)
	}

	out := make([]Neighbor, len(top))
	for i, sc := range top {
		out[i] = Neighbor{Object: sc.obj, LB: sc.d, UB: sc.d}
	}
	return out, nil
}

// EA is the one-shot convenience form: it runs the benchmark query in a
// fresh throwaway session.
func (db *TerrainDB) EA(q mesh.SurfacePoint, k int) (Result, error) {
	return db.NewSession(nil).EA(q, k)
}

// BruteForce ranks every object by the reference surface distance — the
// oracle used by tests and, on small inputs, sanity checks. It bypasses the
// paged stores (no page accounting) but still pins one epoch so the scan
// sees a consistent object version under concurrent updates.
func (s *Session) BruteForce(q mesh.SurfacePoint, k int) []Neighbor {
	db := s.db
	type scored struct {
		obj workload.Object
		d   float64
	}
	var table []workload.Object
	if db.store != nil {
		e := db.store.Pin()
		table = e.Table()
		e.Release() // Table() is an immutable snapshot; safe after release
	}
	all := make([]scored, 0, len(table))
	for _, o := range table {
		all = append(all, scored{o, s.referenceDistance(q, o.Point)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	if k > len(all) {
		k = len(all)
	}
	out := make([]Neighbor, k)
	for i := 0; i < k; i++ {
		out[i] = Neighbor{Object: all[i].obj, LB: all[i].d, UB: all[i].d}
	}
	return out
}

// BruteForce is the one-shot convenience form over a throwaway session.
func (db *TerrainDB) BruteForce(q mesh.SurfacePoint, k int) []Neighbor {
	return db.NewSession(nil).BruteForce(q, k)
}

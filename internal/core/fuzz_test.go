package core

import (
	"math/rand"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/workload"
)

// TestMR3RandomisedRobustness hammers MR3 with many random small
// configurations — terrains, presets, object counts, ks, schedules and
// query positions (including degenerate ones at vertices and on edges) —
// always checking the k-set against brute force. This is the randomized
// end-to-end guard for the whole pipeline.
func TestMR3RandomisedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("randomised sweep is slow")
	}
	rng := rand.New(rand.NewSource(20060714))
	scheds := []Schedule{S1, S2, S3}
	for trial := 0; trial < 12; trial++ {
		preset := dem.BH
		if trial%2 == 1 {
			preset = dem.EP
		}
		size := 8
		if trial%3 == 0 {
			size = 16
		}
		m := mesh.FromGrid(dem.Synthesize(preset, size, 10, rng.Int63()))
		db, err := BuildTerrainDB(m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		nObj := 5 + rng.Intn(40)
		objs, err := workload.RandomObjects(m, db.Loc, nObj, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		db.SetObjects(objs)

		ext := m.Extent()
		var q mesh.SurfacePoint
		switch trial % 3 {
		case 0: // random interior point
			q, err = db.SurfacePointAt(geom.Vec2{
				X: ext.MinX + rng.Float64()*ext.Width(),
				Y: ext.MinY + rng.Float64()*ext.Height(),
			})
		case 1: // exactly at a mesh vertex
			v := mesh.VertexID(rng.Intn(m.NumVerts()))
			q = mesh.SurfacePoint{Pos: m.Verts[v], Face: m.FacesOfVertex(v)[0]}
		default: // exactly at an object's position (distance 0 neighbour)
			o := objs[rng.Intn(len(objs))]
			q = o.Point
		}
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(nObj)
		sched := scheds[rng.Intn(len(scheds))]
		res, err := db.MR3(q, k, sched, Options{})
		if err != nil {
			t.Fatalf("trial %d (%s size=%d n=%d k=%d %s): %v",
				trial, preset.Name, size, nObj, k, sched.Name, err)
		}
		if len(res.Neighbors) != k {
			t.Fatalf("trial %d: %d neighbours, want %d", trial, len(res.Neighbors), k)
		}
		sameKSet(t, db, q, res.Neighbors, k)
	}
}

package core

import (
	"fmt"
	"math"
	"sort"

	"surfknn/internal/geom"
	"surfknn/internal/graph"
	"surfknn/internal/mesh"
	"surfknn/internal/objstore"
	"surfknn/internal/pathnet"
)

// This file implements the paper's second future-work item (§6): "an
// efficient sk-NN query with obstacle constraints, which can be found in
// many real-life sk-NN applications, such as energy consumption and vehicle
// stability considerations for rovers, and general traversability
// constraints". Faces can be masked out (water, too-steep slopes, declared
// obstacles); distances are then measured along the traversable surface
// only.

// FaceMask reports whether a face is traversable.
type FaceMask func(f mesh.FaceID) bool

// SlopeMask admits faces whose slope (angle between the face normal and
// vertical) is at most maxSlopeDeg — the rover-stability constraint.
func SlopeMask(m *mesh.Mesh, maxSlopeDeg float64) FaceMask {
	maxRad := maxSlopeDeg * math.Pi / 180
	return func(f mesh.FaceID) bool {
		n := m.Triangle(f).Normal()
		l := n.Norm()
		if l == 0 {
			return false
		}
		// Slope = angle between the normal and +z.
		cos := math.Abs(n.Z) / l
		return math.Acos(clampUnit(cos)) <= maxRad
	}
}

// RegionMask blocks every face whose centroid falls inside any of the given
// rectangles (declared obstacle areas: lakes, restricted zones).
func RegionMask(m *mesh.Mesh, obstacles []geom.MBR) FaceMask {
	return func(f mesh.FaceID) bool {
		c := m.Triangle(f).Centroid().XY()
		for _, o := range obstacles {
			if o.Contains(c) {
				return false
			}
		}
		return true
	}
}

// AndMask combines masks conjunctively.
func AndMask(masks ...FaceMask) FaceMask {
	return func(f mesh.FaceID) bool {
		for _, m := range masks {
			if !m(f) {
				return false
			}
		}
		return true
	}
}

func clampUnit(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// MaskedKNN answers the surface k-NN query over the traversable
// sub-surface: the distance to each object is the shortest path that stays
// on faces admitted by mask. Objects standing on blocked faces, or
// unreachable from q without crossing blocked faces, are excluded (the
// result may therefore hold fewer than k entries).
//
// Unlike MR3 this runs at a single (pathnet) resolution — the
// multiresolution structures are built for the unconstrained surface; a
// masked DMTM is future work here exactly as it was for the paper.
func (db *TerrainDB) MaskedKNN(q mesh.SurfacePoint, k int, mask FaceMask) ([]Neighbor, error) {
	var view *objstore.Epoch
	if db.store != nil {
		view = db.store.Pin()
		defer view.Release()
	}
	return db.maskedKNN(view, q, k, mask)
}

// maskedKNN is MaskedKNN over an already-pinned epoch (nil when no objects
// are installed); Session.MaskedKNNCtx passes its per-query view.
func (db *TerrainDB) maskedKNN(view *objstore.Epoch, q mesh.SurfacePoint, k int, mask FaceMask) ([]Neighbor, error) {
	if view == nil {
		return nil, fmt.Errorf("core: no objects installed (call SetObjects)")
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if mask == nil {
		return nil, fmt.Errorf("core: nil mask (use MR3 for unconstrained queries)")
	}
	if !mask(q.Face) {
		return nil, fmt.Errorf("core: query point stands on a blocked face")
	}
	var faces []mesh.FaceID
	for f := 0; f < db.Mesh.NumFaces(); f++ {
		if mask(mesh.FaceID(f)) {
			faces = append(faces, mesh.FaceID(f))
		}
	}
	if len(faces) == 0 {
		return nil, fmt.Errorf("core: mask blocks the entire surface")
	}
	pn := pathnet.BuildSubset(db.Mesh, db.cfg.SteinerPerEdge, faces)
	src := pn.Embed(q)

	// One single-source shortest-path run reaches every object.
	dist := graph.Dijkstra(pn.G, src)
	type scored struct {
		obj Neighbor
		d   float64
	}
	var reach []scored
	for _, o := range view.Table() {
		if !mask(o.Point.Face) {
			continue
		}
		// The object's distance is min over its face's boundary points of
		// (dist to point + in-face straight leg).
		d := pn.DistanceToFacePoint(dist, o.Point)
		if math.IsInf(d, 1) {
			continue
		}
		reach = append(reach, scored{Neighbor{Object: o, LB: d, UB: d}, d})
	}
	sort.Slice(reach, func(i, j int) bool { return reach[i].d < reach[j].d })
	if k > len(reach) {
		k = len(reach)
	}
	out := make([]Neighbor, k)
	for i := 0; i < k; i++ {
		out[i] = reach[i].obj
	}
	return out, nil
}

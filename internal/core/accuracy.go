package core

import (
	"context"
	"fmt"
	"math"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/obs"
	"surfknn/internal/stats"
)

// DistanceRange is a bracketing of a surface distance with its achieved
// accuracy ε = LB/UB.
type DistanceRange struct {
	LB, UB float64
	// Accuracy is LB/UB in [0,1]; 1 means the range collapsed.
	Accuracy float64
	// Iterations is the number of resolution steps consumed.
	Iterations int
}

// DistanceWithAccuracy answers the paper's §5.3 query — "what is the
// surface distance between a and b within accuracy X%" — directly from the
// multiresolution structures: it walks the schedule, tightening [lb, ub],
// and stops as soon as lb/ub ≥ accuracy (or the ladder is exhausted, in
// which case the best achieved range is returned). accuracy must be in
// (0, 1]; the structures on typical terrains support up to roughly the
// Fig. 8 plateau.
func (s *Session) DistanceWithAccuracy(a, b mesh.SurfacePoint, accuracy float64, sched Schedule) (DistanceRange, error) {
	return s.DistanceWithAccuracyCtx(nil, a, b, accuracy, sched)
}

// DistanceWithAccuracyCtx is DistanceWithAccuracy bounded by a per-call
// context: ctx cancels or deadlines this query only (nil selects the
// session's default context).
func (s *Session) DistanceWithAccuracyCtx(ctx context.Context, a, b mesh.SurfacePoint, accuracy float64, sched Schedule) (DistanceRange, error) {
	out, _, err := s.DistanceWithAccuracyCostCtx(ctx, a, b, accuracy, sched)
	return out, err
}

// DistanceWithAccuracyCostCtx is DistanceWithAccuracyCtx returning, in
// addition, the query's Result shell — no neighbours, but the per-phase
// Cost, Trace and Epoch the plain form discards. The EXPLAIN path needs
// those numbers; the DistanceRange itself is bit-identical to what the
// plain form returns.
func (s *Session) DistanceWithAccuracyCostCtx(ctx context.Context, a, b mesh.SurfacePoint, accuracy float64, sched Schedule) (DistanceRange, Result, error) {
	if accuracy <= 0 || accuracy > 1 || math.IsNaN(accuracy) {
		return DistanceRange{}, Result{}, fmt.Errorf("core: accuracy %g outside (0,1]", accuracy)
	}
	s.beginQuery(ctx, algoAccuracy)
	out, err := s.distanceWithAccuracy(a, b, accuracy, sched)
	res, err2 := s.endQuery(algoAccuracy, 0, nil, err)
	return out, res, err2
}

// distanceWithAccuracy walks the refinement ladder under one "refine" phase,
// with a trace span per resolution step.
func (s *Session) distanceWithAccuracy(a, b mesh.SurfacePoint, accuracy float64, sched Schedule) (DistanceRange, error) {
	db := s.db
	s.beginPhase(stats.PhaseRefine)
	pc := s.curPhase()
	out := DistanceRange{
		LB: a.Pos.Dist(b.Pos),
		UB: math.Inf(1),
	}
	ext := db.Mesh.Extent()
	for it := 0; it < sched.Steps(); it++ {
		if err := s.interrupted(); err != nil {
			return out, err
		}
		out.Iterations = it + 1
		pc.Iterations++
		dmRes, sdnRes := sched.At(it)
		span := obs.NoSpan
		if s.cost.trace != nil {
			span = s.startSpan("iter", map[string]float64{
				"i": float64(it), "dm_res": dmRes, "sdn_res": sdnRes,
			})
		}
		// Upper bound (running minimum).
		var ub float64
		region := ext
		if !math.IsInf(out.UB, 1) {
			if m := geom.NewEllipse(a.XY(), b.XY(), out.UB).MBR(); !m.IsEmpty() {
				region = m
			}
		}
		if dmRes >= PathnetResolution {
			ub = s.path.DistanceWithin(a, b, region)
			if math.IsInf(ub, 1) {
				// Region clipped every path; retry unclipped. The discarded
				// second result is the path polyline, not an error — truly
				// disconnected points keep UB = +Inf, which the final check
				// below turns into an explicit error.
				ub, _ = s.path.Distance(a, b)
			}
			pc.UpperBounds++
			// The pathnet level is the reference metric: collapse the range.
			if ub < out.UB {
				out.UB = ub
			}
			if out.UB > out.LB {
				out.LB = out.UB
			}
		} else {
			tm := db.Tree.TimeForResolution(dmRes)
			ids, err := s.fetchDMTM(region, tm)
			if err != nil {
				s.endSpan(span)
				return out, err
			}
			e := s.est
			e.Begin(tm)
			for _, id := range ids {
				e.AddEdge(int32(id))
			}
			est := e.UpperBound(db.Mesh, a, b)
			pc.UpperBounds++
			if est.UB < out.UB {
				out.UB = est.UB
			}
		}
		// Lower bound within the refreshed ellipse (running maximum).
		if !math.IsInf(out.UB, 1) {
			if m := geom.NewEllipse(a.XY(), b.XY(), out.UB).MBR(); !m.IsEmpty() {
				region = m
			}
			if _, err := s.fetchSDN(region, SDNLevel(sdnRes)); err != nil {
				s.endSpan(span)
				return out, err
			}
			est := db.MSDN.LowerBoundScratch(&s.sdnSc, a.Pos, b.Pos, region, sdnRes)
			pc.LowerBounds++
			if est.LB > out.LB {
				out.LB = est.LB
			}
			if out.LB > out.UB {
				out.LB = out.UB
			}
		}
		s.endSpan(span)
		out.Accuracy = out.LB / out.UB
		if out.Accuracy >= accuracy {
			break
		}
	}
	if math.IsInf(out.UB, 1) {
		return out, fmt.Errorf("core: points are not connected on the surface")
	}
	return out, nil
}

// DistanceWithAccuracy is the one-shot convenience form: it runs the query
// in a fresh throwaway session.
func (db *TerrainDB) DistanceWithAccuracy(a, b mesh.SurfacePoint, accuracy float64, sched Schedule) (DistanceRange, error) {
	return db.NewSession(nil).DistanceWithAccuracy(a, b, accuracy, sched)
}

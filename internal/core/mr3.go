package core

import (
	"fmt"
	"math"
	"time"

	"surfknn/internal/index"
	"surfknn/internal/mesh"
	"surfknn/internal/stats"
	"surfknn/internal/workload"
)

// Result is the outcome of one sk-NN query.
type Result struct {
	Neighbors []Neighbor
	Metrics   stats.Metrics
}

// MR3 answers the surface k-NN query with Multi-Resolution Range Ranking
// (§4.1):
//
//  1. 2-D k-NN: find the k objects nearest to q's (x,y) projection.
//  2. Surface-distance ranking of those k to obtain a tight upper bound
//     ub(q,b) of the k-th surface neighbour.
//  3. 2-D range query with radius ub(q,b) to collect every possible
//     surface neighbour (any object farther in the plane is farther on the
//     surface).
//  4. Surface-distance ranking of the collected candidates until the k-th
//     neighbour's upper bound is no greater than the (k+1)-th's lower
//     bound.
func (s *Session) MR3(q mesh.SurfacePoint, k int, sched Schedule, opt Options) (Result, error) {
	db := s.db
	if db.Dxy == nil {
		return Result{}, fmt.Errorf("core: no objects installed (call SetObjects)")
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if err := s.interrupted(); err != nil {
		return Result{}, err
	}
	s.beginQuery()
	var met stats.Metrics
	start := time.Now()

	// Step 1: 2-D k-NN on Dxy.
	c1 := db.Dxy.KNN(q.XY(), k, &s.dxyVisits)
	objs1 := db.itemsToObjects(c1)

	// Step 2: rank C1, tightening the k-th neighbour's upper bound.
	ranked, err := s.rank(q, objs1, k, sched, opt, &met, true)
	if err != nil {
		return Result{}, err
	}
	radius := kthUB(ranked, k)
	if math.IsInf(radius, 1) {
		return Result{}, fmt.Errorf("core: could not bound the %d-th neighbour", k)
	}

	// Step 3: 2-D range query with the bound as radius.
	c2 := db.Dxy.WithinDist(q.XY(), radius, &s.dxyVisits)
	objs2 := db.itemsToObjects(c2)

	// Step 4: rank C2 until the k-set is determined.
	final, err := s.rank(q, objs2, k, sched, opt, &met, false)
	if err != nil {
		return Result{}, err
	}

	met.CPU = time.Since(start)
	met.Pages = s.pagesAccessed()
	met.Elapsed = met.CPU + time.Duration(met.Pages)*db.cfg.PageCost
	return Result{Neighbors: final, Metrics: met}, nil
}

// MR3 is the one-shot convenience form: it runs the query in a fresh
// throwaway session. Callers issuing many queries — or wanting
// cancellation — create a Session once and query through it.
func (db *TerrainDB) MR3(q mesh.SurfacePoint, k int, sched Schedule, opt Options) (Result, error) {
	return db.NewSession(nil).MR3(q, k, sched, opt)
}

func (db *TerrainDB) itemsToObjects(items []index.Item) []workload.Object {
	out := make([]workload.Object, 0, len(items))
	for _, it := range items {
		if o, ok := db.objByID[it.ID]; ok {
			out = append(out, o)
		}
	}
	return out
}

// kthUB returns the k-th neighbour's upper bound from a ranked result.
func kthUB(ranked []Neighbor, k int) float64 {
	if len(ranked) == 0 {
		return math.Inf(1)
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[k-1].UB
}

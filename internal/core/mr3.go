package core

import (
	"context"
	"fmt"
	"math"

	"surfknn/internal/index"
	"surfknn/internal/mesh"
	"surfknn/internal/obs"
	"surfknn/internal/stats"
)

// Result is the outcome of one sk-NN query.
//
// Neighbors and Cost.Phases alias buffers owned by the answering Session:
// they are valid until the next query on that session (or its release to a
// pool). Callers that keep a Result across queries must copy those slices
// first — every in-tree consumer either uses a one-shot session or consumes
// the Result before reusing the session.
type Result struct {
	Neighbors []Neighbor
	// Cost is the structured per-phase cost breakdown: wall time per MR3
	// step, page accesses split into buffer-pool hits/misses and R-tree
	// visits, and the work counters. Metrics derives the legacy flat view.
	Cost stats.Cost
	// Trace is the query's phase trace; non-nil only when the session has
	// tracing enabled (or a slow-query log armed the recorder).
	Trace *obs.Trace
	// Epoch is the object-store epoch the query read: every neighbour comes
	// from this one consistent object version (0 on a store-less database).
	Epoch uint64
}

// Metrics is the legacy flat cost view, derived from Cost: the same
// numbers (total time, CPU time, pages accessed, work counters) the
// pre-Cost API reported in a Metrics field.
func (r Result) Metrics() stats.Metrics { return r.Cost.Metrics() }

// MR3 answers the surface k-NN query with Multi-Resolution Range Ranking
// (§4.1) under the session's default context:
//
//  1. 2-D k-NN: find the k objects nearest to q's (x,y) projection.
//  2. Surface-distance ranking of those k to obtain a tight upper bound
//     ub(q,b) of the k-th surface neighbour.
//  3. 2-D range query with radius ub(q,b) to collect every possible
//     surface neighbour (any object farther in the plane is farther on the
//     surface).
//  4. Surface-distance ranking of the collected candidates until the k-th
//     neighbour's upper bound is no greater than the (k+1)-th's lower
//     bound.
func (s *Session) MR3(q mesh.SurfacePoint, k int, sched Schedule, opt Options) (Result, error) {
	return s.MR3Ctx(nil, q, k, sched, opt)
}

// MR3Ctx is MR3 bounded by a per-call context: ctx cancels or deadlines
// this query only (nil selects the session's default context).
func (s *Session) MR3Ctx(ctx context.Context, q mesh.SurfacePoint, k int, sched Schedule, opt Options) (Result, error) {
	if s.db.store == nil {
		return Result{}, fmt.Errorf("core: no objects installed (call SetObjects)")
	}
	if k < 1 {
		return Result{}, fmt.Errorf("core: k must be positive, got %d", k)
	}
	s.beginQuery(ctx, algoMR3)
	ns, err := s.mr3(q, k, sched, opt)
	return s.endQuery(algoMR3, k, ns, err)
}

// mr3 runs the four MR3 steps, each under its own cost phase, reading
// objects through the epoch pinned at beginQuery.
//
//sklint:hotpath
func (s *Session) mr3(q mesh.SurfacePoint, k int, sched Schedule, opt Options) ([]Neighbor, error) {
	if err := s.interrupted(); err != nil {
		return nil, err
	}

	// Step 1: 2-D k-NN on Dxy. The item and object buffers are session
	// scratch; each step consumes its objects before the next refills them.
	// Candidates enter the ranker in canonical order (ascending planar
	// distance, id tiebreak): the ranker's bounds are order-independent, but
	// the final stable sort preserves insertion order across upper-bound
	// ties, and the canonical order makes that tie order a pure function of
	// the candidate set — the property that lets a sharded deployment
	// (internal/shard) reassemble bit-identical answers.
	s.beginPhase(stats.PhaseKNN2D)
	s.items = s.view.KNNInto(q.XY(), k, &s.dxyVisits, &s.knnSc, s.items[:0])
	index.SortByDist(s.items, q.XY())
	s.objs = s.viewObjectsInto(s.items, s.objs)

	// Step 2: rank C1, tightening the k-th neighbour's upper bound.
	s.beginPhase(stats.PhaseRankC1)
	ranked, err := s.rank(q, s.objs, k, sched, opt, true)
	if err != nil {
		return nil, err
	}
	radius := kthUB(ranked, k)
	s.step3Radius = radius // recorded for the safe-region computation
	if math.IsInf(radius, 1) {
		//lint:ignore hotpath-alloc error path: allocates only when no k-th bound exists, never on a successful query
		return nil, fmt.Errorf("core: could not bound the %d-th neighbour", k)
	}

	// Step 3: 2-D range query with the bound as radius, again canonically
	// ordered.
	s.beginPhase(stats.PhaseRange2D)
	s.items = s.view.WithinDistInto(q.XY(), radius, &s.dxyVisits, s.items[:0])
	index.SortByDist(s.items, q.XY())
	s.objs = s.viewObjectsInto(s.items, s.objs)

	// Step 4: rank C2 until the k-set is determined.
	s.beginPhase(stats.PhaseRankC2)
	final, err := s.rank(q, s.objs, k, sched, opt, false)
	if err != nil {
		return nil, err
	}
	return final, nil
}

// MR3 is the one-shot convenience form: it runs the query in a fresh
// throwaway session. Callers issuing many queries — or wanting
// cancellation — create a Session once and query through it.
func (db *TerrainDB) MR3(q mesh.SurfacePoint, k int, sched Schedule, opt Options) (Result, error) {
	return db.NewSession(nil).MR3(q, k, sched, opt)
}

// kthUB returns the k-th neighbour's upper bound from a ranked result.
func kthUB(ranked []Neighbor, k int) float64 {
	if len(ranked) == 0 {
		return math.Inf(1)
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[k-1].UB
}

//go:build race

package core

// raceEnabled reports whether the race detector is active; allocation
// counts are unreliable under instrumentation, so alloc tests skip.
const raceEnabled = true

package core

import (
	"fmt"
	"time"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/multires"
	"surfknn/internal/objstore"
	"surfknn/internal/obs"
	"surfknn/internal/pathnet"
	"surfknn/internal/sdn"
	"surfknn/internal/storage"
	"surfknn/internal/workload"
)

// Config tunes terrain-database construction.
type Config struct {
	// SteinerPerEdge sets the pathnet refinement (the paper inserts one
	// Steiner point per edge, §5.1). Default 1.
	SteinerPerEdge int
	// SDNSpacing sets the cutting-plane interval; 0 means the mesh's
	// average edge length (the paper's densest recommendation).
	SDNSpacing float64
	// PoolPages is the buffer-pool capacity in pages. Default 4096.
	PoolPages int
	// PageCost is the simulated I/O latency charged per page access when
	// reporting total response time (CPU time excludes it). Default 1 ms,
	// a clustered-read figure for the paper's era of hardware.
	PageCost time.Duration
}

func (c Config) withDefaults() Config {
	if c.SteinerPerEdge == 0 {
		c.SteinerPerEdge = 1
	}
	if c.PoolPages == 0 {
		c.PoolPages = 4096
	}
	if c.PageCost == 0 {
		c.PageCost = time.Millisecond
	}
	return c
}

// TerrainDB bundles a terrain surface with every derived structure sk-NN
// query processing needs: the DDM tree and pathnet (DMTM), the MSDN, the
// paged stores that account disk accesses, and the object set with its 2-D
// R-tree (the paper's Dxy), held in a versioned objstore.Store.
//
// After construction the terrain structures are immutable. The object set
// is dynamic: Insert/Delete/Upsert on ObjectStore() publish new epochs
// while queries run — each query pins one epoch at beginQuery and sees that
// single consistent version throughout (see internal/objstore). Queries
// read everything through per-query Sessions (see NewSession), so any
// number of queries may run concurrently with updates on one TerrainDB.
type TerrainDB struct {
	Mesh *mesh.Mesh
	Loc  *mesh.Locator
	Tree *multires.Tree
	Path *pathnet.Pathnet
	MSDN *sdn.MSDN
	Pool *storage.BufferPool

	cfg           Config
	reg           *obs.Registry // process-wide counters; nil when uninstrumented
	sessions      sessionPool   // idle sessions for AcquireSession/Release
	dmtmStore     *storage.Clustered
	sdnStore      *storage.Clustered
	store         *objstore.Store // versioned object table + Dxy; nil before SetObjects
	formatVersion int             // snapshot format loaded from, or the current format when built fresh
}

// FormatVersion reports the snapshot format version this database was loaded
// from (4 for the current format, 3 for legacy); a freshly built database
// reports the current format it would save as. Serving layers expose it in
// healthz so a coordinator can verify topology.
func (db *TerrainDB) FormatVersion() int { return db.formatVersion }

// Instrument attaches a process-wide observability registry: every query
// on this database (from any session) feeds its lifecycle, work and latency
// counters, and the buffer pool mirrors its hit/miss/eviction activity.
// Like SetObjects this is a setup step — call it before sessions start
// querying; sessions read the field without locks. A nil registry detaches.
// Uninstrumented databases skip all registry work, so experiment figures are
// unchanged by this machinery existing.
func (db *TerrainDB) Instrument(reg *obs.Registry) {
	db.reg = reg
	db.Pool.Instrument(reg)
	if db.store != nil {
		db.store.Instrument(reg)
	}
}

// Registry returns the registry installed with Instrument (nil when the
// database is uninstrumented).
func (db *TerrainDB) Registry() *obs.Registry { return db.reg }

// BuildTerrainDB derives all structures from the mesh. This is the offline
// preprocessing step of the paper ("DMTM is pre-created ... Both DMTM and
// MSDN data are stored in the Oracle database").
func BuildTerrainDB(m *mesh.Mesh, cfg Config) (*TerrainDB, error) {
	cfg = cfg.withDefaults()
	tree, err := multires.BuildFromMesh(m)
	if err != nil {
		return nil, fmt.Errorf("core: building DDM: %w", err)
	}
	return assembleTerrainDB(m, tree, sdn.BuildMSDN(m, cfg.SDNSpacing), nil, cfg)
}

// assembleTerrainDB wires the precomputed structures (freshly built or
// loaded from a snapshot) into a queryable database, rebuilding the
// derivable parts (locator, paged stores). path supplies a restored
// pathnet (from a v4 snapshot's flat buffers); nil builds it from the mesh,
// the Steiner subdivision being a deterministic derivation.
func assembleTerrainDB(m *mesh.Mesh, tree *multires.Tree, ms *sdn.MSDN, path *pathnet.Pathnet, cfg Config) (*TerrainDB, error) {
	cfg = cfg.withDefaults()
	if path == nil {
		path = pathnet.Build(m, cfg.SteinerPerEdge)
	}
	db := &TerrainDB{
		Mesh: m,
		Loc:  mesh.NewLocator(m),
		Tree: tree,
		Path: path,
		MSDN: ms,
		Pool: storage.NewBufferPool(storage.NewMemFile(), cfg.PoolPages),
		cfg:  cfg,

		formatVersion: 4,
	}
	var err error

	// Persist the DMTM connectivity records: one record per DDM edge with
	// its lifetime [Birth, Death) as the validity interval.
	recs := make([]storage.ClusterRecord, 0, len(tree.Edges))
	for i, e := range tree.Edges {
		minX, minY, maxX, maxY := tree.EdgeMBR(e)
		recs = append(recs, storage.ClusterRecord{
			ID:   uint64(i),
			MBR:  geom.MBR{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY},
			From: e.Birth,
			To:   e.Death,
		})
	}
	db.dmtmStore, err = storage.BuildClustered(db.Pool, recs)
	if err != nil {
		return nil, fmt.Errorf("core: storing DMTM: %w", err)
	}

	// Persist the SDN segments, one materialised set per ladder level
	// ("line segments with extra information to record their resolution
	// level and to which plane they belong to", §3.3).
	var srecs []storage.ClusterRecord
	id := uint64(0)
	for level, res := range SDNLadder {
		for _, fam := range [][]*sdn.CrossLine{db.MSDN.XLines, db.MSDN.YLines} {
			for _, cl := range fam {
				for _, seg := range cl.Segments(res, m.Extent()) {
					srecs = append(srecs, storage.ClusterRecord{
						ID:   id,
						MBR:  seg.Box.XY(),
						From: int32(level),
						To:   int32(level) + 1,
					})
					id++
				}
			}
		}
	}
	db.sdnStore, err = storage.BuildClustered(db.Pool, srecs)
	if err != nil {
		return nil, fmt.Errorf("core: storing MSDN: %w", err)
	}
	return db, nil
}

// SetObjects installs the object dataset at epoch 0: it replaces the whole
// object store with a fresh one whose bulk-packed base holds objs and whose
// Dxy R-tree is built over their (x,y) projections. It is a setup step, not
// a query: call it before any session starts querying (it swaps the store
// that concurrent queries pin without locks). Incremental changes under
// live traffic go through ObjectStore().Insert/Delete/Upsert instead.
func (db *TerrainDB) SetObjects(objs []workload.Object) {
	db.SetObjectsAt(objs, 0)
}

// SetObjectsAt is SetObjects resuming at a given epoch number — how a
// snapshot restore continues the version sequence it was saved at.
func (db *TerrainDB) SetObjectsAt(objs []workload.Object, epoch uint64) {
	db.store = objstore.NewAt(objs, epoch)
	if db.reg != nil {
		db.store.Instrument(db.reg)
	}
}

// ObjectStore returns the versioned object store (nil before SetObjects).
// All object mutation goes through it; the sklint objstore-write rule
// forbids writing the object table directly anywhere else.
func (db *TerrainDB) ObjectStore() *objstore.Store { return db.store }

// CurrentEpoch returns the latest published object epoch (0 before
// SetObjects).
func (db *TerrainDB) CurrentEpoch() uint64 {
	if db.store == nil {
		return 0
	}
	return db.store.Epoch()
}

// Objects returns the current epoch's object table. The slice is shared
// with the store and must not be modified.
func (db *TerrainDB) Objects() []workload.Object {
	if db.store == nil {
		return nil
	}
	return db.store.Current().Table()
}

// Object resolves an object by ID in the current epoch.
func (db *TerrainDB) Object(id int64) (workload.Object, bool) {
	if db.store == nil {
		return workload.Object{}, false
	}
	return db.store.Current().Object(id)
}

// SurfacePointAt lifts a 2-D location onto the surface.
func (db *TerrainDB) SurfacePointAt(p geom.Vec2) (mesh.SurfacePoint, error) {
	return mesh.MakeSurfacePoint(db.Mesh, db.Loc, p)
}

// ReferenceDistance returns the library's ground-truth surface distance:
// the pathnet approximation at the configured refinement (the same network
// MR3's finest level uses). Tests compare MR3 and EA results against
// rankings under this metric.
func (db *TerrainDB) ReferenceDistance(a, b mesh.SurfacePoint) float64 {
	d, _ := db.Path.Distance(a, b)
	return d
}

package simplify

import (
	"math"
	"testing"

	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
)

func TestQuadricFromPlane(t *testing.T) {
	// Plane z = 0: squared distance is z².
	q := QuadricFromPlane(0, 0, 1, 0)
	if got := q.Error(geom.Vec3{X: 5, Y: -3, Z: 4}); math.Abs(got-16) > 1e-12 {
		t.Errorf("Error = %v, want 16", got)
	}
	if got := q.Error(geom.Vec3{X: 1, Y: 2, Z: 0}); got != 0 {
		t.Errorf("on-plane error = %v", got)
	}
	// Offset plane z = 2 → (0,0,1,-2).
	q = QuadricFromPlane(0, 0, 1, -2)
	if got := q.Error(geom.Vec3{X: 0, Y: 0, Z: 5}); math.Abs(got-9) > 1e-12 {
		t.Errorf("offset plane error = %v, want 9", got)
	}
}

func TestQuadricAddScale(t *testing.T) {
	qa := QuadricFromPlane(1, 0, 0, 0) // x²
	qb := QuadricFromPlane(0, 1, 0, 0) // y²
	s := qa.Add(qb)
	p := geom.Vec3{X: 3, Y: 4, Z: 7}
	if got := s.Error(p); math.Abs(got-25) > 1e-12 {
		t.Errorf("sum error = %v, want 25", got)
	}
	if got := qa.Scale(2).Error(p); math.Abs(got-18) > 1e-12 {
		t.Errorf("scaled error = %v, want 18", got)
	}
}

func TestQuadricOptimalPoint(t *testing.T) {
	// Three orthogonal planes meeting at (1,2,3).
	q := QuadricFromPlane(1, 0, 0, -1).
		Add(QuadricFromPlane(0, 1, 0, -2)).
		Add(QuadricFromPlane(0, 0, 1, -3))
	p, ok := q.OptimalPoint()
	if !ok {
		t.Fatal("expected solvable quadric")
	}
	if p.Dist(geom.Vec3{X: 1, Y: 2, Z: 3}) > 1e-9 {
		t.Errorf("optimal = %v", p)
	}
	if got := q.Error(p); got > 1e-18 {
		t.Errorf("error at optimum = %v", got)
	}
	// Single plane: singular.
	if _, ok := QuadricFromPlane(0, 0, 1, 0).OptimalPoint(); ok {
		t.Error("single-plane quadric should be singular")
	}
}

func TestSolve3(t *testing.T) {
	m := [3][3]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 4}}
	want := [3]float64{1, -2, 3}
	b := [3]float64{
		2*want[0] + want[1],
		want[0] + 3*want[1] + want[2],
		want[1] + 4*want[2],
	}
	x, ok := solve3(m, b)
	if !ok {
		t.Fatal("solve3 failed")
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if _, ok := solve3([3][3]float64{{1, 1, 1}, {1, 1, 1}, {0, 0, 1}}, [3]float64{1, 1, 1}); ok {
		t.Error("singular system should fail")
	}
}

func buildTestMesh(size int, preset dem.Preset) *mesh.Mesh {
	return mesh.FromGrid(dem.Synthesize(preset, size, 10, 42))
}

func TestSimplifyStructure(t *testing.T) {
	m := buildTestMesh(8, dem.EP) // 81 vertices
	h, err := Simplify(m)
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumVerts()
	if h.NumLeaves != n {
		t.Fatalf("NumLeaves = %d, want %d", h.NumLeaves, n)
	}
	if len(h.Collapses) != n-1 {
		t.Fatalf("collapses = %d, want %d", len(h.Collapses), n-1)
	}
	if h.NumNodes() != 2*n-1 {
		t.Fatalf("NumNodes = %d, want %d", h.NumNodes(), 2*n-1)
	}
	// Every node is merged exactly once; parents are numbered sequentially.
	merged := make(map[int32]bool)
	for i, c := range h.Collapses {
		if c.Parent != int32(n+i) {
			t.Fatalf("collapse %d parent = %d, want %d", i, c.Parent, n+i)
		}
		if merged[c.A] || merged[c.B] {
			t.Fatalf("collapse %d reuses a dead node (%d,%d)", i, c.A, c.B)
		}
		if c.A == c.B {
			t.Fatalf("collapse %d merges node with itself", i)
		}
		if int(c.A) >= n+i || int(c.B) >= n+i {
			t.Fatalf("collapse %d references unborn node", i)
		}
		merged[c.A], merged[c.B] = true, true
	}
	// The root (2n-2) is never merged.
	if merged[int32(2*n-2)] {
		t.Error("root should never be merged")
	}
}

func TestSimplifyErrorMonotone(t *testing.T) {
	m := buildTestMesh(8, dem.BH)
	h, err := Simplify(m)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, c := range h.Collapses {
		if c.Error < prev {
			t.Fatalf("collapse %d error %v < previous %v (must be monotone)", i, c.Error, prev)
		}
		prev = c.Error
	}
}

func TestSimplifyDistancesValid(t *testing.T) {
	// Every recorded collapse distance must be at least the Euclidean
	// distance between representative positions of the merged nodes'
	// representatives (it is a path length on the original mesh).
	m := buildTestMesh(8, dem.BH)
	h, err := Simplify(m)
	if err != nil {
		t.Fatal(err)
	}
	n := h.NumLeaves
	// Representative original vertex per node: leaves map to themselves,
	// parents inherit A's representative.
	rep := make([]int32, h.NumNodes())
	for i := 0; i < n; i++ {
		rep[i] = int32(i)
	}
	for _, c := range h.Collapses {
		rep[c.Parent] = rep[c.A]
	}
	for i, c := range h.Collapses {
		ra, rb := rep[c.A], rep[c.B]
		euclid := m.Verts[ra].Dist(m.Verts[rb])
		if c.Dist < euclid-1e-9 {
			t.Fatalf("collapse %d: recorded dist %v < Euclidean %v between reps", i, c.Dist, euclid)
		}
	}
}

func TestSimplifyFlatMeshLowError(t *testing.T) {
	// A perfectly flat mesh should simplify with ~zero error throughout.
	g := dem.NewGrid(9, 9, 10)
	m := mesh.FromGrid(g)
	h, err := Simplify(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range h.Collapses {
		if c.Error > 1e-6 {
			t.Fatalf("collapse %d on flat mesh has error %v", i, c.Error)
		}
	}
}

func TestSimplifyOrdersByError(t *testing.T) {
	// A mesh that is flat except for one sharp spike: the spike vertex
	// should be among the very last merged (its collapse is expensive).
	g := dem.NewGrid(9, 9, 10)
	spikeCol, spikeRow := 4, 4
	g.Set(spikeCol, spikeRow, 100)
	m := mesh.FromGrid(g)
	spike := int32(spikeRow*9 + spikeCol)
	h, err := Simplify(m)
	if err != nil {
		t.Fatal(err)
	}
	// Track when the spike's subtree first gets merged.
	containsSpike := make(map[int32]bool)
	containsSpike[spike] = true
	firstMerge := -1
	for i, c := range h.Collapses {
		if containsSpike[c.A] || containsSpike[c.B] {
			if firstMerge == -1 {
				firstMerge = i
			}
			containsSpike[c.Parent] = true
		}
	}
	if firstMerge < len(h.Collapses)/2 {
		t.Errorf("spike merged at step %d of %d; expected late", firstMerge, len(h.Collapses))
	}
}

func TestSimplifyTinyMeshes(t *testing.T) {
	// Single triangle.
	m := mesh.New(
		[]geom.Vec3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0}},
		[][3]mesh.VertexID{{0, 1, 2}},
	)
	h, err := Simplify(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Collapses) != 2 {
		t.Errorf("collapses = %d, want 2", len(h.Collapses))
	}
	// Empty mesh errors.
	if _, err := Simplify(mesh.New(nil, nil)); err == nil {
		t.Error("empty mesh should error")
	}
}

func TestSimplifyDisconnected(t *testing.T) {
	// Two separate triangles cannot collapse to one node.
	m := mesh.New(
		[]geom.Vec3{
			{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}, {X: 0, Y: 1, Z: 0},
			{X: 10, Y: 10, Z: 0}, {X: 11, Y: 10, Z: 0}, {X: 10, Y: 11, Z: 0},
		},
		[][3]mesh.VertexID{{0, 1, 2}, {3, 4, 5}},
	)
	if _, err := Simplify(m); err == nil {
		t.Error("disconnected mesh should error")
	}
}

// Package simplify implements Garland–Heckbert quadric-error-metric (QEM)
// mesh simplification by iterative edge collapse. The paper builds its DDM
// structure "by adapting [the] simplification tool [5] with the Quadric
// Error Metrics"; this package provides that tool. Its output is the full
// binary collapse history, which internal/multires replays into the DM/DDM
// tree.
package simplify

import (
	"math"

	"surfknn/internal/geom"
)

// Quadric is the symmetric 4x4 quadric form Q(p) = pᵀAp + 2bᵀp + c used to
// measure the squared distance of a point to a set of planes. The symmetric
// 3x3 matrix A is stored as its upper triangle [a00,a01,a02,a11,a12,a22].
type Quadric struct {
	A [6]float64
	B geom.Vec3
	C float64
}

// QuadricFromPlane returns the fundamental error quadric of the plane
// a·x + b·y + c·z + d = 0 with (a,b,c) a unit normal: Q(p) is the squared
// distance from p to the plane.
func QuadricFromPlane(a, b, c, d float64) Quadric {
	return Quadric{
		A: [6]float64{a * a, a * b, a * c, b * b, b * c, c * c},
		B: geom.Vec3{X: a * d, Y: b * d, Z: c * d},
		C: d * d,
	}
}

// Add returns q + o.
func (q Quadric) Add(o Quadric) Quadric {
	var r Quadric
	for i := range q.A {
		r.A[i] = q.A[i] + o.A[i]
	}
	r.B = q.B.Add(o.B)
	r.C = q.C + o.C
	return r
}

// Scale returns q scaled by s (used to weight planes by face area).
func (q Quadric) Scale(s float64) Quadric {
	var r Quadric
	for i := range q.A {
		r.A[i] = q.A[i] * s
	}
	r.B = q.B.Scale(s)
	r.C = q.C * s
	return r
}

// Error evaluates Q(p). Accumulated floating-point error can make the
// mathematically non-negative form dip slightly below zero; it is clamped.
func (q Quadric) Error(p geom.Vec3) float64 {
	ax := q.A[0]*p.X + q.A[1]*p.Y + q.A[2]*p.Z
	ay := q.A[1]*p.X + q.A[3]*p.Y + q.A[4]*p.Z
	az := q.A[2]*p.X + q.A[4]*p.Y + q.A[5]*p.Z
	e := p.X*ax + p.Y*ay + p.Z*az + 2*q.B.Dot(p) + q.C
	if e < 0 {
		return 0
	}
	return e
}

// OptimalPoint returns the position minimising Q, obtained by solving
// A·p = -b. ok is false when A is (near-)singular — the caller should then
// fall back to evaluating candidate positions.
func (q Quadric) OptimalPoint() (geom.Vec3, bool) {
	m := [3][3]float64{
		{q.A[0], q.A[1], q.A[2]},
		{q.A[1], q.A[3], q.A[4]},
		{q.A[2], q.A[4], q.A[5]},
	}
	rhs := [3]float64{-q.B.X, -q.B.Y, -q.B.Z}
	p, ok := solve3(m, rhs)
	if !ok {
		return geom.Vec3{}, false
	}
	return geom.Vec3{X: p[0], Y: p[1], Z: p[2]}, true
}

// solve3 solves a 3x3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(m [3][3]float64, b [3]float64) ([3]float64, bool) {
	const tol = 1e-12
	for col := 0; col < 3; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < tol {
			return [3]float64{}, false
		}
		m[col], m[piv] = m[piv], m[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		for r := col + 1; r < 3; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c < 3; c++ {
				m[r][c] -= f * m[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [3]float64
	for r := 2; r >= 0; r-- {
		x[r] = b[r]
		for c := r + 1; c < 3; c++ {
			x[r] -= m[r][c] * x[c]
		}
		x[r] /= m[r][r]
	}
	return x, true
}

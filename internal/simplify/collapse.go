package simplify

import (
	"container/heap"
	"fmt"
	"sort"

	"surfknn/internal/geom"
	"surfknn/internal/mesh"
)

// Collapse records one edge collapse: nodes A and B merge into Parent.
// Node IDs follow the DM convention: the n original vertices are nodes
// 0..n-1 and the i-th collapse (0-based) creates node n+i, so the root of
// the final tree is node 2n-2.
type Collapse struct {
	A, B   int32     // merged nodes (A's representative survives)
	Parent int32     // the new node, == NumLeaves + index of this collapse
	Error  float64   // monotone (clamped) quadric error of the merge
	Pos    geom.Vec3 // QEM-optimal position of the merged node
	Dist   float64   // recorded network distance between A and B's representatives
}

// History is the full collapse sequence of a mesh down to a single node.
type History struct {
	NumLeaves int
	Collapses []Collapse
}

// NumNodes returns the total number of tree nodes (leaves + parents).
func (h *History) NumNodes() int { return h.NumLeaves + len(h.Collapses) }

// candidate is a potential collapse in the priority queue. Entries are
// invalidated lazily via per-node version counters.
type candidate struct {
	a, b   int32
	va, vb uint32 // versions of a and b at push time
	err    float64
	pos    geom.Vec3
}

type candHeap []candidate

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].err < h[j].err }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Simplify collapses the mesh down to a single node and returns the full
// history. The mesh must be connected; a disconnected mesh returns an
// error once no collapsible pair remains.
//
// Distances recorded with each collapse follow the paper's DDM rule:
// d(A,B) is the current network distance annotation between the two nodes,
// which is by construction the length of a real path on the original mesh
// between their representative vertices.
func Simplify(m *mesh.Mesh) (*History, error) {
	n := m.NumVerts()
	if n == 0 {
		return nil, fmt.Errorf("simplify: empty mesh")
	}
	if n == 1 {
		return &History{NumLeaves: 1}, nil
	}

	total := 2*n - 1
	quadrics := make([]Quadric, n, total)
	pos := make([]geom.Vec3, n, total)
	alive := make([]bool, n, total)
	version := make([]uint32, n, total)
	neighbors := make([]map[int32]float64, n, total)

	for v := 0; v < n; v++ {
		pos[v] = m.Verts[v]
		alive[v] = true
		neighbors[v] = make(map[int32]float64, 8)
	}
	// Initial quadrics: area-weighted face planes.
	for f := 0; f < m.NumFaces(); f++ {
		tri := m.Triangle(mesh.FaceID(f))
		a, b, c, d := tri.Plane()
		if a == 0 && b == 0 && c == 0 && d == 0 {
			continue // degenerate face contributes nothing
		}
		q := QuadricFromPlane(a, b, c, d).Scale(tri.Area())
		for _, v := range m.Faces[f] {
			quadrics[v] = quadrics[v].Add(q)
		}
	}
	// Initial connectivity with edge lengths as the recorded distances.
	for _, e := range m.Edges() {
		d := m.EdgeLength(e)
		neighbors[e.A][int32(e.B)] = d
		neighbors[e.B][int32(e.A)] = d
	}

	pq := &candHeap{}
	pushCandidate := func(a, b int32) {
		q := quadrics[a].Add(quadrics[b])
		p, ok := q.OptimalPoint()
		err := 0.0
		if ok && p.Dist(pos[a]) < 10*pos[a].Dist(pos[b])+1 {
			err = q.Error(p)
		} else {
			// Singular quadric: evaluate endpoints and midpoint.
			p = pos[a]
			err = q.Error(p)
			if e2 := q.Error(pos[b]); e2 < err {
				p, err = pos[b], e2
			}
			if mid := pos[a].Lerp(pos[b], 0.5); q.Error(mid) < err {
				p, err = mid, q.Error(mid)
			}
		}
		heap.Push(pq, candidate{a: a, b: b, va: version[a], vb: version[b], err: err, pos: p})
	}
	for a := int32(0); a < int32(n); a++ {
		for _, b := range sortedKeys(neighbors[a]) {
			if b > a {
				pushCandidate(a, b)
			}
		}
	}

	hist := &History{NumLeaves: n, Collapses: make([]Collapse, 0, n-1)}
	lastErr := 0.0
	for len(hist.Collapses) < n-1 {
		if pq.Len() == 0 {
			return nil, fmt.Errorf("simplify: mesh is disconnected (%d of %d collapses done)", len(hist.Collapses), n-1)
		}
		cand := heap.Pop(pq).(candidate)
		a, b := cand.a, cand.b
		if !alive[a] || !alive[b] || version[a] != cand.va || version[b] != cand.vb {
			continue // stale
		}
		dAB, connected := neighbors[a][b]
		if !connected {
			continue
		}

		parent := int32(len(pos))
		// Monotone error: DM LOD intervals require child error <= parent
		// error, so clamp to the largest error seen so far.
		e := cand.err
		if e < lastErr {
			e = lastErr
		}
		lastErr = e
		hist.Collapses = append(hist.Collapses, Collapse{
			A: a, B: b, Parent: parent, Error: e, Pos: cand.pos, Dist: dAB,
		})

		// Create the parent node: N(c) = N(a) ∪ N(b) \ {a,b}; the recorded
		// distance follows the paper's rule — d(c,w) = d(a,w) when w ∈ N(a),
		// otherwise d(b,w) + d(a,b).
		merged := make(map[int32]float64, len(neighbors[a])+len(neighbors[b]))
		for w, d := range neighbors[a] {
			if w != b {
				merged[w] = d
			}
		}
		for w, d := range neighbors[b] {
			if w == a {
				continue
			}
			if _, ok := merged[w]; !ok {
				merged[w] = d + dAB
			}
		}
		quadrics = append(quadrics, quadrics[a].Add(quadrics[b]))
		pos = append(pos, cand.pos)
		alive[a], alive[b] = false, false
		alive = append(alive, true)
		version = append(version, 0)
		neighbors[a], neighbors[b] = nil, nil
		neighbors = append(neighbors, merged)

		// Rewire neighbours to point at the parent and refresh candidates.
		// Iterate in sorted order so heap tie-breaking — and therefore the
		// whole collapse history — is deterministic run to run.
		for _, w := range sortedKeys(merged) {
			d := merged[w]
			nw := neighbors[w]
			delete(nw, a)
			delete(nw, b)
			nw[parent] = d
			version[w]++
			pushCandidate(parent, w)
		}
	}
	return hist, nil
}

// sortedKeys returns the map's keys in ascending order (determinism).
func sortedKeys(m map[int32]float64) []int32 {
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Command sklint runs the repo-specific static analyzer over the module.
//
// Usage:
//
//	go run ./cmd/sklint ./...            # whole module (the CI gate)
//	go run ./cmd/sklint ./internal/core
//	go run ./cmd/sklint -rules           # list the rule set
//	go run ./cmd/sklint -facts ./...     # dump phase-1 facts (debugging)
//	go run ./cmd/sklint -json ./...      # machine-readable diagnostics
//	go run ./cmd/sklint -write-baseline ./...  # accept current hotpath-alloc debt
//
// sklint exits 0 when the tree is clean and 1 when any diagnostic fires.
// hotpath-alloc findings recorded in the committed baseline file
// (lint.baseline.json at the module root) are suppressed; the baseline is
// a one-way ratchet — growth fails, and -write-baseline regenerates the
// file after debt is paid down. Suppress an individual finding with a
// `//lint:ignore <rule>[,<rule>...] <reason>` comment on the offending
// line or the line above; the reason is mandatory. See the "Static
// analysis & invariants" section of DESIGN.md for what each rule protects.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"surfknn/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	only := flag.String("only", "", "run a single rule by name")
	asJSON := flag.Bool("json", false, "emit diagnostics as JSON lines")
	github := flag.Bool("github", false, "also emit GitHub ::error annotations")
	facts := flag.Bool("facts", false, "dump phase-1 module facts and exit")
	baselinePath := flag.String("baseline", "lint.baseline.json",
		"hotpath-alloc baseline file, relative to the module root; 'none' disables")
	writeBaseline := flag.Bool("write-baseline", false,
		"rewrite the baseline to accept the current hotpath-alloc findings, then report the rest")
	flag.Parse()

	if *listRules {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-24s %s\n", r.Name(), r.Doc())
		}
		return
	}

	rules := lint.AllRules()
	if *only != "" {
		r, ok := lint.RuleByName(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "sklint: unknown rule %q (see -rules)\n", *only)
			os.Exit(2)
		}
		rules = []lint.Rule{r}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sklint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.NewLoader().Load(root, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sklint:", err)
		os.Exit(2)
	}

	if *facts {
		fmt.Print(lint.BuildModule(pkgs).FactsDump())
		return
	}

	diags := lint.Run(pkgs, rules)

	if *writeBaseline {
		path := filepath.Join(root, *baselinePath)
		if err := lint.WriteBaseline(path, lint.CollectBaseline(diags)); err != nil {
			fmt.Fprintln(os.Stderr, "sklint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "sklint: baseline written to %s\n", path)
	}
	if *baselinePath != "none" {
		b, err := lint.LoadBaseline(filepath.Join(root, *baselinePath))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sklint:", err)
			os.Exit(2)
		}
		diags, _ = lint.ApplyBaseline(b, diags)
	}

	for _, d := range diags {
		// Print module-relative paths: stable across machines, clickable in CI.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		switch {
		case *asJSON:
			enc, _ := json.Marshal(map[string]any{ //lint:ignore dropped-error marshaling strings and ints cannot fail
				"file": d.Pos.Filename, "line": d.Pos.Line, "col": d.Pos.Column,
				"rule": d.Rule, "message": d.Message, "key": d.Key,
			})
			fmt.Println(string(enc))
		default:
			fmt.Println(d)
		}
		if *github {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=sklint %s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sklint: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

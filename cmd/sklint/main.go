// Command sklint runs the repo-specific static analyzer over the module.
//
// Usage:
//
//	go run ./cmd/sklint ./...          # whole module (the CI gate)
//	go run ./cmd/sklint ./internal/core
//	go run ./cmd/sklint -rules         # list the rule set
//
// sklint exits 0 when the tree is clean and 1 when any diagnostic fires.
// Suppress an individual finding with a `//lint:ignore <rule> <reason>`
// comment on the offending line or the line above; the reason is
// mandatory. See the "Static analysis & invariants" section of DESIGN.md
// for what each rule protects.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"surfknn/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list the rules and exit")
	only := flag.String("only", "", "run a single rule by name")
	flag.Parse()

	if *listRules {
		for _, r := range lint.AllRules() {
			fmt.Printf("%-24s %s\n", r.Name(), r.Doc())
		}
		return
	}

	rules := lint.AllRules()
	if *only != "" {
		r, ok := lint.RuleByName(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "sklint: unknown rule %q (see -rules)\n", *only)
			os.Exit(2)
		}
		rules = []lint.Rule{r}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sklint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.NewLoader().Load(root, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sklint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, rules)
	for _, d := range diags {
		// Print module-relative paths: stable across machines, clickable in CI.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sklint: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Command skview renders a terrain as an ASCII elevation/hillshade map in
// the terminal and can export meshes (at any multiresolution level) as
// Wavefront OBJ files — the closest text-mode equivalent of the paper's
// Fig. 1 renderings.
//
// Usage:
//
//	skview -preset BH -size 64                 # ASCII elevation map
//	skview -dem bh.sdem -shade                 # hillshade instead of ramp
//	skview -preset BH -obj out.obj -res 0.1    # export the 10% LOD mesh
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"surfknn/internal/dem"
	"surfknn/internal/mesh"
	"surfknn/internal/multires"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skview: ")
	var (
		demPath = flag.String("dem", "", "terrain file produced by skgen")
		preset  = flag.String("preset", "BH", "synthesize preset when no -dem given")
		size    = flag.Int("size", 64, "synthesized grid size")
		cell    = flag.Float64("cell", 100, "synthesized sample spacing (m)")
		seed    = flag.Int64("seed", 2006, "random seed")
		width   = flag.Int("width", 72, "output columns")
		shade   = flag.Bool("shade", false, "render a hillshade instead of an elevation ramp")
		objPath = flag.String("obj", "", "export the mesh as Wavefront OBJ to this file instead of rendering")
		res     = flag.Float64("res", 1.0, "multiresolution level for -obj (fraction of points, e.g. 0.1)")
	)
	flag.Parse()

	var g *dem.Grid
	var err error
	if *demPath != "" {
		g, err = dem.ReadFile(*demPath)
	} else {
		var p dem.Preset
		switch strings.ToUpper(*preset) {
		case "BH":
			p = dem.BH
		case "EP":
			p = dem.EP
		default:
			log.Fatalf("unknown preset %q", *preset)
		}
		g = dem.Synthesize(p, *size, *cell, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *objPath != "" {
		m := mesh.FromGrid(g)
		out := m
		if *res < 1.0 {
			tree, err := multires.BuildFromMesh(m)
			if err != nil {
				log.Fatal(err)
			}
			out = tree.ExtractMesh(m, tree.TimeForResolution(*res))
		}
		f, err := os.Create(*objPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := out.WriteOBJ(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d vertices, %d faces (%.1f%% resolution)\n",
			*objPath, out.NumVerts(), out.NumFaces(), *res*100)
		return
	}

	render(g, *width, *shade)
}

// render draws the grid as an ASCII map, downsampled to the requested
// width with a 2:1 character aspect correction.
func render(g *dem.Grid, width int, shade bool) {
	if width < 8 {
		width = 8
	}
	height := width * g.Rows / g.Cols / 2
	if height < 4 {
		height = 4
	}
	lo, hi := g.MinMaxElev()
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	ramp := []byte(" .:-=+*#%@")
	var b strings.Builder
	for r := height - 1; r >= 0; r-- { // north up
		for c := 0; c < width; c++ {
			gc := c * (g.Cols - 1) / (width - 1)
			gr := r * (g.Rows - 1) / (height - 1)
			var v float64
			if shade {
				v = hillshade(g, gc, gr)
			} else {
				v = (g.At(gc, gr) - lo) / span
			}
			idx := int(v * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	fmt.Print(b.String())
	fmt.Printf("%.1f km × %.1f km, elevation %.0f–%.0f m\n",
		float64(g.Cols-1)*g.CellSize/1000, float64(g.Rows-1)*g.CellSize/1000, lo, hi)
}

// hillshade computes simple lambertian shading with a north-west light.
func hillshade(g *dem.Grid, c, r int) float64 {
	c1, r1 := c+1, r+1
	if c1 >= g.Cols {
		c1 = c
	}
	if r1 >= g.Rows {
		r1 = r
	}
	dzdx := (g.At(c1, r) - g.At(c, r)) / g.CellSize
	dzdy := (g.At(c, r1) - g.At(c, r)) / g.CellSize
	// Light direction from the north-west, 45° elevation.
	lx, ly, lz := -0.5, 0.5, 0.707
	nx, ny, nz := -dzdx, -dzdy, 1.0
	n := math.Sqrt(nx*nx + ny*ny + nz*nz)
	dot := (nx*lx + ny*ly + nz*lz) / n
	if dot < 0 {
		dot = 0
	}
	return dot
}

// Command skgen synthesises terrain datasets. The paper builds its BH
// (Bearhead Mountain) and EP (Eagle Peak) surfaces from USGS DEM files;
// skgen generates the synthetic stand-ins used throughout this repository
// and writes them in the library's .sdem format.
//
// Usage:
//
//	skgen -preset BH -size 256 -cell 50 -seed 2006 -o bh.sdem
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/mesh"
	"surfknn/internal/shard"
	"surfknn/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skgen: ")
	var (
		preset = flag.String("preset", "BH", "terrain preset: BH (rugged) or EP (smooth)")
		size   = flag.Int("size", 128, "grid size (power of two; the grid has (size+1)^2 samples)")
		cell   = flag.Float64("cell", 100, "sample spacing in metres")
		seed   = flag.Int64("seed", 2006, "random seed")
		out    = flag.String("o", "", "output file (default <preset>.sdem)")
		info   = flag.Bool("info", false, "print terrain statistics after generating")
		dbOut  = flag.String("db", "", "also build and snapshot a query-ready TerrainDB (objects included) to this file, for skserve")
		dbObjs = flag.Int("db-objects", 150, "objects placed in the -db snapshot")
		tiles  = flag.String("tiles", "", `also cut the -db snapshot into an NxM shard grid (e.g. "2x2"): per-tile snapshots plus a manifest, for skcoord`)
	)
	flag.Parse()
	if *tiles != "" && *dbOut == "" {
		log.Fatal("-tiles requires -db (the tiler cuts the built snapshot)")
	}

	var p dem.Preset
	switch strings.ToUpper(*preset) {
	case "BH":
		p = dem.BH
	case "EP":
		p = dem.EP
	default:
		log.Fatalf("unknown preset %q (want BH or EP)", *preset)
	}
	path := *out
	if path == "" {
		path = strings.ToLower(p.Name) + ".sdem"
	}

	g := dem.Synthesize(p, *size, *cell, *seed)
	if err := g.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %dx%d samples (%.0f m spacing, %.1f km², %s preset)\n",
		path, g.Cols, g.Rows, g.CellSize, g.AreaKm2(), p.Name)
	if *info {
		lo, hi := g.MinMaxElev()
		m := mesh.FromGrid(g)
		fmt.Printf("elevation range: %.1f – %.1f m\n", lo, hi)
		fmt.Printf("roughness: %.4f\n", g.Roughness())
		fmt.Printf("mesh: %d vertices, %d faces, %d edges, avg edge %.1f m\n",
			m.NumVerts(), m.NumFaces(), len(m.Edges()), m.AverageEdgeLength())
		fmt.Printf("surface area / planar area: %.3f\n", m.SurfaceArea()/m.Extent().Area())
	}
	if *dbOut != "" {
		// The snapshot carries the mesh, DDM tree, MSDN and objects —
		// everything skserve needs to start answering queries without
		// redoing the offline preprocessing. Object placement uses seed+1,
		// the same convention as skquery's generated workloads.
		m := mesh.FromGrid(g)
		db, err := core.BuildTerrainDB(m, core.Config{})
		if err != nil {
			log.Fatal(err)
		}
		objs, err := workload.RandomObjects(m, db.Loc, *dbObjs, *seed+1)
		if err != nil {
			log.Fatal(err)
		}
		db.SetObjects(objs)
		if err := db.SaveFile(*dbOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: TerrainDB snapshot with %d objects at epoch %d\n",
			*dbOut, len(objs), db.CurrentEpoch())
		if *tiles != "" {
			nx, ny, err := parseTiles(*tiles)
			if err != nil {
				log.Fatal(err)
			}
			dir := filepath.Dir(*dbOut)
			prefix := strings.TrimSuffix(filepath.Base(*dbOut), ".skdb")
			man, err := shard.Cut(db, nx, ny, dir, prefix)
			if err != nil {
				log.Fatal(err)
			}
			manPath := filepath.Join(dir, prefix+".manifest.json")
			if err := shard.WriteManifest(man, manPath); err != nil {
				log.Fatal(err)
			}
			for _, s := range man.Shards {
				fmt.Printf("wrote %s: shard %s with %d objects\n",
					filepath.Join(dir, s.File), s.ID, s.Objects)
			}
			fmt.Printf("wrote %s: %dx%d shard manifest at epoch %d (fill in shard addresses, then skcoord -manifest)\n",
				manPath, nx, ny, man.Epoch)
		}
	}
	os.Exit(0)
}

// parseTiles parses an "NxM" grid spec.
func parseTiles(s string) (nx, ny int, err error) {
	if _, err := fmt.Sscanf(strings.ToLower(s), "%dx%d", &nx, &ny); err != nil || nx < 1 || ny < 1 {
		return 0, 0, fmt.Errorf("invalid -tiles %q (want NxM, e.g. 2x2)", s)
	}
	return nx, ny, nil
}

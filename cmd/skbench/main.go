// Command skbench regenerates the paper's evaluation figures (§5) on the
// synthetic terrains and prints each as an aligned text table.
//
// Usage:
//
//	skbench -fig 10 -size 64 -queries 3
//	skbench -fig all -v
//
// Figures: 1 (multiresolution extraction), 7 (CH vs EA scalability),
// 8 (distance-range accuracy), 9 (integrated I/O regions), 10 (effect of
// k), 11 (effect of object density), ratio (surface/Euclidean overhead).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"surfknn/internal/experiments"
	"surfknn/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skbench: ")
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 1, 7, 8, 9, 10, 11, ratio or all")
		size    = flag.Int("size", 64, "terrain grid size (power of two)")
		cell    = flag.Float64("cell", 100, "sample spacing (m)")
		queries = flag.Int("queries", 3, "queries averaged per data point")
		density = flag.Float64("density", 4, "object density for the k sweep (objects/km²)")
		k       = flag.Int("k", 10, "fixed k for the density sweep")
		seed    = flag.Int64("seed", 2006, "random seed")
		pageMs  = flag.Float64("pagems", 1, "simulated I/O cost per page (ms)")
		verbose = flag.Bool("v", false, "log progress to stderr")
		csvDir  = flag.String("csv", "", "also write each figure as <dir>/<id>.csv")
		debug   = flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address while the run executes")
		hold    = flag.Duration("debug-hold", 0, "keep the debug server (and process) alive this long after the run")
	)
	flag.Parse()

	p := experiments.Params{
		Size:     *size,
		CellSize: *cell,
		Queries:  *queries,
		Density:  *density,
		K:        *k,
		Seed:     *seed,
		PageCost: time.Duration(*pageMs * float64(time.Millisecond)),
	}
	if *verbose {
		p.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *debug != "" {
		reg := obs.NewRegistry()
		if perr := reg.Publish("surfknn"); perr != nil {
			log.Fatal(perr)
		}
		_, addr, derr := obs.StartDebugServer(*debug)
		if derr != nil {
			log.Fatal(derr)
		}
		fmt.Printf("# debug server listening on %s\n", addr)
		p.Obs = reg
	}
	start := time.Now()
	figs, err := experiments.Run(*fig, p)
	for _, f := range figs {
		fmt.Println(f.String())
		if *csvDir != "" {
			if werr := writeCSV(*csvDir, f); werr != nil {
				log.Fatal(werr)
			}
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# completed in %v\n", time.Since(start).Round(time.Millisecond))
	if *debug != "" && *hold > 0 {
		fmt.Printf("# holding debug server for %v\n", *hold)
		time.Sleep(*hold)
	}
}

// writeCSV renders one figure as a comma-separated file with the x column
// first, for plotting tools.
func writeCSV(dir string, f experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(strings.ReplaceAll(s.Label, ",", ";"))
	}
	b.WriteByte('\n')
	if len(f.Series) > 0 {
		for i := range f.Series[0].X {
			fmt.Fprintf(&b, "%g", f.Series[0].X[i])
			for _, s := range f.Series {
				if i < len(s.Y) {
					fmt.Fprintf(&b, ",%g", s.Y[i])
				} else {
					b.WriteByte(',')
				}
			}
			b.WriteByte('\n')
		}
	}
	return os.WriteFile(filepath.Join(dir, f.ID+".csv"), []byte(b.String()), 0o644)
}

// Command skserve is the surface k-NN query service: it loads a terrain —
// a TerrainDB snapshot produced by `skgen -db` (or a raw .sdem grid plus
// generated objects) — once at startup and serves queries over HTTP until
// SIGTERM/SIGINT, draining in-flight requests before exit.
//
// Usage:
//
//	skgen -preset BH -size 64 -db bh.skdb -db-objects 200
//	skserve -snapshot bh.skdb -addr 127.0.0.1:8080
//	curl -s localhost:8080/v1/knn -d '{"x":3200,"y":3200,"k":5}'
//
// Endpoints: POST /v1/knn, POST /v1/range, POST /v1/distance,
// POST/DELETE /v1/objects (epoch-versioned object updates),
// GET /v1/healthz, GET /debug/vars (the "surfknn" engine and
// "surfknn_server" serving-layer metric groups).
//
// A snapshot taken after object updates carries its epoch: a restarted
// skserve resumes the epoch sequence where the saved process left it (the
// startup line and /v1/healthz both report it).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/mesh"
	"surfknn/internal/obs"
	"surfknn/internal/server"
	"surfknn/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skserve: ")
	fs := flag.NewFlagSet("skserve", flag.ContinueOnError)
	var (
		snapshot = fs.String("snapshot", "", "TerrainDB snapshot produced by skgen -db (preferred)")
		demPath  = fs.String("dem", "", "raw .sdem terrain; objects are generated with -objects/-seed")
		objects  = fs.Int("objects", 150, "objects to generate when loading a raw -dem")
		seed     = fs.Int64("seed", 2006, "object placement seed for -dem")
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		poolPgs  = fs.Int("pool-pages", 0, "buffer-pool capacity in pages (0 = library default)")
		inflight = fs.Int("max-inflight", 0, "max concurrently executing queries (0 = 2x GOMAXPROCS)")
		queue    = fs.Int("queue", 0, "admission wait-queue depth (0 = 4x max-inflight)")
		wait     = fs.Duration("queue-wait", 0, "max time a request may wait for a slot (0 = 250ms)")
		timeout  = fs.Duration("timeout", 0, "default per-query deadline (0 = 5s)")
		maxTime  = fs.Duration("max-timeout", 0, "cap on client-requested timeouts (0 = 30s)")
		cacheN   = fs.Int("cache", 0, "result-cache entries, negative disables (0 = 1024)")
		grace    = fs.Duration("grace", 30*time.Second, "shutdown drain deadline")
		shardID  = fs.String("shard-id", "", `shard identity when serving one tile of a sharded deployment (e.g. "tile-0-1"; see skgen -tiles)`)
		access   = fs.String("access-log", "", `access-log destination: "stderr", a file path, or empty for off`)
		slowlog  = fs.Duration("slowlog", -1, "log queries slower than this to stderr as JSON (0 = every query, negative = off)")
	)
	fs.SetOutput(io.Discard) // parse errors are reported as one line below
	fs.Usage = func() {}     // a parse error must not dump usage; see below
	if err := fs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "usage: skserve -snapshot file.skdb [flags]\n\nflags:\n")
			fs.SetOutput(os.Stderr)
			fs.PrintDefaults()
			os.Exit(0)
		}
		log.Fatalf("%v (run skserve -h for usage)", err)
	}

	db, err := loadDatabase(*snapshot, *demPath, *objects, *seed, core.Config{PoolPages: *poolPgs})
	if err != nil {
		log.Fatal(err)
	}
	if len(db.Objects()) == 0 && *shardID == "" {
		// A shard tile may legitimately own zero objects; a standalone
		// server with none is a misbuilt snapshot.
		log.Fatalf("snapshot carries no objects; regenerate it with skgen -db -db-objects N")
	}

	reg := obs.NewRegistry()
	if *slowlog >= 0 {
		reg.SetSlowLog(obs.NewSlowQueryLog(os.Stderr, *slowlog))
	}
	db.Instrument(reg)
	if err := reg.Publish("surfknn"); err != nil {
		log.Fatal(err)
	}
	stats := obs.NewServerStats()
	if err := stats.Publish("surfknn_server"); err != nil {
		log.Fatal(err)
	}
	contStats := obs.NewContinuousStats()
	if err := contStats.Publish("surfknn_continuous"); err != nil {
		log.Fatal(err)
	}

	accessW, err := accessWriter(*access)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(db, server.Config{
		MaxInFlight:     *inflight,
		QueueDepth:      *queue,
		QueueWait:       *wait,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTime,
		CacheEntries:    *cacheN,
		ShardID:         *shardID,
		AccessLog:       accessW,
		Stats:           stats,
		ContinuousStats: contStats,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("terrain: %d vertices, %d faces, %d objects at epoch %d\n",
		db.Mesh.NumVerts(), db.Mesh.NumFaces(), len(db.Objects()), db.CurrentEpoch())
	if *shardID != "" {
		fmt.Printf("serving shard %s\n", *shardID)
	}
	// The announce line is the machine-readable contract scripts/check.sh
	// and the e2e test scrape (same pattern as skbench's debug server).
	fmt.Printf("# skserve listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Listener died before any signal; nothing to drain.
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Printf("# shutting down: draining in-flight requests (grace %v)\n", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	fmt.Println("# bye")
}

// loadDatabase builds the TerrainDB the server owns: from a snapshot
// (objects and their epoch included) or from a raw DEM plus generated
// objects (starting at epoch 0).
func loadDatabase(snapshot, demPath string, objects int, seed int64, cfg core.Config) (*core.TerrainDB, error) {
	switch {
	case snapshot != "" && demPath != "":
		return nil, errors.New("-snapshot and -dem are mutually exclusive")
	case snapshot != "":
		return core.LoadFile(snapshot, cfg)
	case demPath != "":
		g, err := dem.ReadFile(demPath)
		if err != nil {
			return nil, err
		}
		m := mesh.FromGrid(g)
		db, err := core.BuildTerrainDB(m, cfg)
		if err != nil {
			return nil, err
		}
		objs, err := workload.RandomObjects(m, db.Loc, objects, seed)
		if err != nil {
			return nil, err
		}
		db.SetObjects(objs)
		return db, nil
	default:
		return nil, errors.New("no terrain given: pass -snapshot file.skdb (from skgen -db) or -dem file.sdem")
	}
}

// accessWriter resolves the -access-log flag.
func accessWriter(dest string) (io.Writer, error) {
	switch strings.ToLower(dest) {
	case "":
		return nil, nil
	case "stderr":
		return os.Stderr, nil
	default:
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("access log: %w", err)
		}
		return f, nil
	}
}

// Command skquery answers a single surface k-NN query on a terrain,
// printing the result set, the distance ranges and the cost metrics.
//
// Usage:
//
//	skquery -dem bh.sdem -objects 200 -x 3200 -y 3200 -k 5 -algo mr3 -sched 1
//	skquery -preset EP -size 64 -k 10 -algo ea
//	skquery -snapshot bh.skdb -k 5
//	skquery -q "SELECT k=5 NEAREST (800, 800) USING s=2"
//	skquery -server http://127.0.0.1:8080 -q "EXPLAIN RANGE (800, 800) WITHIN 500"
//	skquery -repl
//
// When -x/-y are omitted the query point is the terrain centre. A
// -snapshot (from skgen -db) carries its own objects and resumes the
// saved object-store epoch, reported in the terrain line.
//
// -q executes one SKQL statement and exits (non-zero on any error, with a
// line:col caret diagnostic on parse errors); -repl starts an interactive
// shell reading one statement per line. Both work locally or against a
// running skserve/skcoord via -server.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"strings"
	"time"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/obs"
	"surfknn/internal/server/api"
	"surfknn/internal/server/client"
	"surfknn/internal/sklang"
	"surfknn/internal/sklang/skexec"
	"surfknn/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skquery: ")
	var (
		snapPath = flag.String("snapshot", "", "TerrainDB snapshot from skgen -db (objects and epoch included; overrides -dem)")
		demPath  = flag.String("dem", "", "terrain file produced by skgen (overrides -preset/-size)")
		preset   = flag.String("preset", "BH", "synthesize preset when no -dem given: BH or EP")
		size     = flag.Int("size", 64, "synthesized grid size")
		cell     = flag.Float64("cell", 100, "synthesized sample spacing (m)")
		seed     = flag.Int64("seed", 2006, "seed for terrain and objects")
		objects  = flag.Int("objects", 150, "number of uniformly placed objects")
		qx       = flag.Float64("x", math.NaN(), "query x (default: terrain centre)")
		qy       = flag.Float64("y", math.NaN(), "query y (default: terrain centre)")
		k        = flag.Int("k", 5, "number of neighbours")
		algo     = flag.String("algo", "mr3", "algorithm: mr3, ea, brute, range or masked")
		sched    = flag.Int("sched", 1, "MR3 step-length schedule: 1, 2 or 3")
		radius   = flag.Float64("radius", 500, "surface range radius for -algo range (m)")
		slope    = flag.Float64("slope", 35, "max slope for -algo masked (degrees)")
		qstmt    = flag.String("q", "", "execute one SKQL statement (e.g. 'SELECT k=5 NEAREST (800, 800)') and exit; an EXPLAIN prefix prints the annotated plan")
		repl     = flag.Bool("repl", false, "interactive SKQL shell: read one statement per line from stdin (exit with \\q)")
		server   = flag.String("server", "", "query a running skserve/skcoord at this base URL (e.g. http://127.0.0.1:8080) instead of a local terrain")
		follow   = flag.Bool("follow", false, "with -server: register a continuous k-NN subscription at (-x, -y), then read \"x y\" move lines from stdin, printing each answer with its safe-region hit/miss disposition")
		timeout  = flag.Duration("timeout", 0, "abort the query after this long (0 = no limit)")
		debug    = flag.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:8080)")
		trace    = flag.Bool("trace", false, "record the query's phase trace and print it as JSON")
		slowlog  = flag.Duration("slowlog", -1, "log queries slower than this to stderr as JSON (0 = every query, negative = off)")
	)
	// An unknown flag exits non-zero with a one-line error; the full flag
	// dump is reserved for an explicit -h/-help. A script typo should yield
	// one diagnosable line, not a screenful of usage.
	flag.CommandLine.Init("skquery", flag.ContinueOnError)
	flag.CommandLine.SetOutput(io.Discard)
	flag.Usage = func() {} // a parse error must not dump usage; see below
	if err := flag.CommandLine.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "usage: skquery [flags]\n\nflags:\n")
			flag.CommandLine.SetOutput(os.Stderr)
			flag.PrintDefaults()
			os.Exit(0)
		}
		log.Fatalf("%v (run skquery -h for usage)", err)
	}

	if *qstmt != "" && *repl {
		log.Fatal("-q and -repl are mutually exclusive")
	}
	if *server != "" {
		if *snapPath != "" || *demPath != "" {
			log.Fatal("-server and -snapshot/-dem are mutually exclusive")
		}
		if *qstmt != "" || *repl {
			exec := remoteSKQL(*server, *timeout)
			if *repl {
				runREPL(exec)
				return
			}
			if !exec(*qstmt) {
				os.Exit(1)
			}
			return
		}
		if *follow {
			followRemote(*server, *qx, *qy, *k, *sched, *timeout)
			return
		}
		remoteQuery(*server, *algo, *qx, *qy, *k, *sched, *radius, *timeout)
		return
	}
	if *follow {
		log.Fatal("-follow needs a running service: pass -server")
	}

	var (
		db  *core.TerrainDB
		m   *mesh.Mesh
		err error
	)
	if *snapPath != "" {
		if *demPath != "" {
			log.Fatal("-snapshot and -dem are mutually exclusive")
		}
		db, err = core.LoadFile(*snapPath, core.Config{})
		if err != nil {
			log.Fatal(err)
		}
		m = db.Mesh
		fmt.Printf("terrain: %d vertices, %d faces, %d objects at epoch %d\n",
			m.NumVerts(), m.NumFaces(), len(db.Objects()), db.CurrentEpoch())
	} else {
		var g *dem.Grid
		g, err = loadOrSynthesize(*demPath, *preset, *size, *cell, *seed)
		if err != nil {
			log.Fatal(err)
		}
		m = mesh.FromGrid(g)
		fmt.Printf("terrain: %d vertices, %d faces (%.1f km²)\n", m.NumVerts(), m.NumFaces(), g.AreaKm2())
		db, err = core.BuildTerrainDB(m, core.Config{})
		if err != nil {
			log.Fatal(err)
		}
		var objs []workload.Object
		objs, err = workload.RandomObjects(m, db.Loc, *objects, *seed+1)
		if err != nil {
			log.Fatal(err)
		}
		db.SetObjects(objs)
	}
	if len(db.Objects()) == 0 {
		log.Fatal("terrain carries no objects; regenerate the snapshot with skgen -db -db-objects N")
	}
	reg := obs.NewRegistry()
	if *slowlog >= 0 {
		reg.SetSlowLog(obs.NewSlowQueryLog(os.Stderr, *slowlog))
	}
	db.Instrument(reg)
	if *debug != "" {
		if perr := reg.Publish("surfknn"); perr != nil {
			log.Fatal(perr)
		}
		_, addr, derr := obs.StartDebugServer(*debug)
		if derr != nil {
			log.Fatal(derr)
		}
		fmt.Printf("# debug server listening on %s\n", addr)
	}

	if *qstmt != "" || *repl {
		exec := localSKQL(db, *timeout, *trace)
		if *repl {
			runREPL(exec)
			return
		}
		if !exec(*qstmt) {
			os.Exit(1)
		}
		return
	}

	ext := m.Extent()
	p := ext.Center()
	if !math.IsNaN(*qx) {
		p.X = *qx
	}
	if !math.IsNaN(*qy) {
		p.Y = *qy
	}
	q, err := db.SurfacePointAt(geom.Vec2{X: p.X, Y: p.Y})
	if err != nil {
		log.Fatalf("query point: %v", err)
	}
	fmt.Printf("query: (%.1f, %.1f, %.1f), k=%d, algo=%s\n", q.Pos.X, q.Pos.Y, q.Pos.Z, *k, *algo)

	s := core.S1
	switch *sched {
	case 2:
		s = core.S2
	case 3:
		s = core.S3
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sess := db.NewSession(ctx)
	sess.SetTracing(*trace)

	var res core.Result
	switch strings.ToLower(*algo) {
	case "mr3":
		res, err = sess.MR3(q, *k, s, core.Options{})
	case "ea":
		res, err = sess.EA(q, *k)
	case "brute":
		res.Neighbors = sess.BruteForce(q, *k)
	case "range":
		res, err = sess.SurfaceRange(q, *radius, s, core.Options{})
		fmt.Printf("objects within %.0f m of surface travel:\n", *radius)
	case "masked":
		var ns []core.Neighbor
		ns, err = sess.MaskedKNN(q, *k, core.SlopeMask(m, *slope))
		res.Neighbors = ns
		fmt.Printf("k-NN over faces with slope ≤ %.0f°:\n", *slope)
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}
	if err != nil {
		log.Fatal(err)
	}
	for i, n := range res.Neighbors {
		fmt.Printf("%2d. object %-4d at (%.1f, %.1f, %.1f)  dS ∈ [%.2f, %.2f]\n",
			i+1, n.Object.ID, n.Object.Point.Pos.X, n.Object.Point.Pos.Y, n.Object.Point.Pos.Z,
			n.LB, n.UB)
	}
	if *algo == "mr3" || *algo == "ea" || *algo == "range" {
		fmt.Printf("cost: %s\n", res.Metrics())
		for _, p := range res.Cost.Phases {
			fmt.Printf("  %-8s %10v  pages=%d (pool %d+%d, rtree %d)\n",
				p.Phase, p.Wall.Round(time.Microsecond), p.Pages(),
				p.PoolHits, p.PoolMisses, p.RTreeVisits)
		}
	}
	if res.Trace != nil {
		js, jerr := res.Trace.JSON()
		if jerr != nil {
			log.Fatal(jerr)
		}
		fmt.Printf("trace: %s\n", js)
	}
}

// remoteQuery runs the query against a live skserve or skcoord over the
// typed client: the remote's answer is printed in the same shape as a
// local run, plus the store epoch (and cache disposition) the service
// reported. Remote mode supports the algorithms the public API exposes:
// mr3 (POST /v1/knn) and range (POST /v1/range). The query point must be
// given explicitly — there is no local terrain to take a centre from.
func remoteQuery(base, algo string, qx, qy float64, k, sched int, radius float64, timeout time.Duration) {
	if math.IsNaN(qx) || math.IsNaN(qy) {
		log.Fatal("-server mode needs an explicit query point: pass -x and -y")
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	cli := client.New(base)

	hz, err := cli.Healthz(ctx)
	if err != nil {
		log.Fatalf("reaching %s: %v", base, err)
	}
	if hz.ShardID != "" {
		fmt.Printf("remote: %s (shard %s), %d objects at epoch %d\n", base, hz.ShardID, hz.Objects, hz.Epoch)
	} else if len(hz.Shards) > 0 {
		fmt.Printf("remote: %s (coordinator, %d shards), %d objects at epoch %d\n", base, len(hz.Shards), hz.Objects, hz.Epoch)
	} else {
		fmt.Printf("remote: %s, %d objects at epoch %d\n", base, hz.Objects, hz.Epoch)
	}

	var (
		res  api.Result
		meta client.Meta
	)
	switch strings.ToLower(algo) {
	case "mr3":
		fmt.Printf("query: (%.1f, %.1f), k=%d, algo=mr3\n", qx, qy, k)
		res, meta, err = cli.KNN(ctx, api.KNNRequest{X: qx, Y: qy, K: k, Sched: sched})
	case "range":
		fmt.Printf("query: (%.1f, %.1f), radius=%.0f m, algo=range\n", qx, qy, radius)
		res, meta, err = cli.Range(ctx, api.RangeRequest{X: qx, Y: qy, Radius: radius, Sched: sched})
	default:
		log.Fatalf("algorithm %q is not served remotely (use mr3 or range)", algo)
	}
	if err != nil {
		log.Fatal(err)
	}
	for i, n := range res.Neighbors {
		fmt.Printf("%2d. object %-4d at (%.1f, %.1f, %.1f)  dS ∈ [%.2f, %.2f]\n",
			i+1, n.ID, n.X, n.Y, n.Z, float64(n.LB), float64(n.UB))
	}
	fmt.Printf("cost: %d pages, %d µs cpu, %d µs elapsed\n", res.Cost.Pages, res.Cost.CPUUs, res.Cost.ElapsedUs)
	if meta.Cache != "" {
		fmt.Printf("epoch %d, cache %s\n", meta.Epoch, meta.Cache)
	} else {
		fmt.Printf("epoch %d\n", meta.Epoch)
	}
}

// followRemote is the continuous-query client mode: it registers a
// subscription at (-x, -y), prints the initial top-k and safe radius, then
// treats every "x y" line on stdin as a move of the query point — each
// answer is printed with the service's safe-region disposition (hit = served
// from the subscription's safe region with zero engine work, miss =
// re-evaluated) and the epoch it is valid for. EOF unsubscribes.
func followRemote(base string, qx, qy float64, k, sched int, timeout time.Duration) {
	if math.IsNaN(qx) || math.IsNaN(qy) {
		log.Fatal("-follow needs an initial query point: pass -x and -y")
	}
	ctx := context.Background()
	cli := client.New(base)
	callCtx := func() (context.Context, context.CancelFunc) {
		if timeout > 0 {
			return context.WithTimeout(ctx, timeout)
		}
		return context.WithCancel(ctx)
	}

	sctx, cancel := callCtx()
	sub, _, err := cli.Subscribe(sctx, api.SubscribeRequest{X: qx, Y: qy, K: k, Sched: sched})
	cancel()
	if err != nil {
		log.Fatalf("subscribing at (%g, %g): %v", qx, qy, err)
	}
	printFollow := func(res api.SubscribeResponse, disposition string) {
		fmt.Printf("[%s] epoch %d, safe radius %.2f m around (%.1f, %.1f)\n",
			disposition, res.Epoch, float64(res.SafeRadius), res.AnchorX, res.AnchorY)
		for i, n := range res.Neighbors {
			fmt.Printf("%2d. object %-4d at (%.1f, %.1f, %.1f)  dS ∈ [%.2f, %.2f]\n",
				i+1, n.ID, n.X, n.Y, n.Z, float64(n.LB), float64(n.UB))
		}
	}
	fmt.Printf("subscription %d at (%.1f, %.1f), k=%d — reading \"x y\" moves from stdin\n", sub.ID, qx, qy, k)
	printFollow(sub, "subscribed")

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var x, y float64
		if _, err := fmt.Sscanf(line, "%f %f", &x, &y); err != nil {
			fmt.Fprintf(os.Stderr, "skipping %q: want \"x y\"\n", line)
			continue
		}
		mctx, cancel := callCtx()
		res, meta, err := cli.MoveSubscription(mctx, sub.ID, api.MoveRequest{X: x, Y: y})
		cancel()
		if err != nil {
			log.Fatalf("moving to (%g, %g): %v", x, y, err)
		}
		printFollow(res, meta.SafeRegion)
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("reading moves: %v", err)
	}
	uctx, cancel := callCtx()
	defer cancel()
	if _, _, err := cli.Unsubscribe(uctx, sub.ID); err != nil {
		log.Fatalf("unsubscribing %d: %v", sub.ID, err)
	}
	fmt.Printf("unsubscribed %d\n", sub.ID)
}

// --- SKQL (-q / -repl) ---

// stmtExec executes one SKQL statement, printing the answer or a
// diagnostic; the bool is false when the statement failed (the one-shot
// path exits non-zero on it, the REPL keeps going).
type stmtExec func(src string) bool

// printDiag renders an error for a statement; parse and plan errors get
// the one-line line:col diagnostic plus a caret under the offending token.
func printDiag(src string, err error) {
	var le *sklang.Error
	if errors.As(err, &le) {
		fmt.Fprintf(os.Stderr, "skquery: %v\n%s\n", le, sklang.Caret(src, le.Pos))
		return
	}
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.Line > 0 {
		fmt.Fprintf(os.Stderr, "skquery: %s\n%s\n", apiErr.Message,
			sklang.Caret(src, sklang.Position{Line: apiErr.Line, Col: apiErr.Col}))
		return
	}
	fmt.Fprintf(os.Stderr, "skquery: %v\n", err)
}

// runREPL reads one statement per line until EOF or \q, executing each.
func runREPL(exec stmtExec) {
	fmt.Println(`SKQL shell — one statement per line ("SELECT k=5 NEAREST (x, y)"), \q to quit`)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("skql> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch line {
		case "":
		case `\q`, "exit", "quit":
			return
		default:
			exec(line) // diagnostics printed; the shell continues either way
		}
		fmt.Print("skql> ")
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("reading statements: %v", err)
	}
	fmt.Println()
}

// localSKQL compiles and runs statements against the local TerrainDB —
// the same sklang → skexec path skserve uses, so answers match the service
// bit for bit.
func localSKQL(db *core.TerrainDB, timeout time.Duration, trace bool) stmtExec {
	cat := sklang.Catalog{
		Objects: len(db.Objects()),
		Faces:   db.Mesh.NumFaces(),
		Area:    db.Mesh.Extent().Area(),
	}
	return func(src string) bool {
		plan, err := sklang.Compile(src, cat)
		if err != nil {
			printDiag(src, err)
			return false
		}
		ctx := context.Background()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		sess := db.NewSession(ctx)
		sess.SetTracing(trace)
		out, err := skexec.Run(ctx, sess, plan)
		if err != nil {
			printDiag(src, err)
			return false
		}
		if plan.Explain {
			fmt.Print(sklang.RenderNode(plan.Root.Wire()))
			return true
		}
		switch plan.Form {
		case "distance":
			fmt.Printf("distance ∈ [%.2f, %.2f] m (accuracy %.4f, %d iterations)\n",
				out.Distance.LB, out.Distance.UB, out.Distance.Accuracy, out.Distance.Iterations)
		case "subscribe":
			fmt.Printf("one-shot evaluation (subscriptions need a running service; see -server -follow)\n")
			printLocalNeighbors(out.Result.Neighbors)
			fmt.Printf("safe radius %.2f m around (%.1f, %.1f)\n", out.Safe.Radius, plan.X, plan.Y)
		default:
			printLocalNeighbors(out.Result.Neighbors)
		}
		fmt.Printf("cost: %s\n", out.Result.Metrics())
		if out.Result.Trace != nil {
			if js, jerr := out.Result.Trace.JSON(); jerr == nil {
				fmt.Printf("trace: %s\n", js)
			}
		}
		return true
	}
}

func printLocalNeighbors(ns []core.Neighbor) {
	for i, n := range ns {
		fmt.Printf("%2d. object %-4d at (%.1f, %.1f, %.1f)  dS ∈ [%.2f, %.2f]\n",
			i+1, n.Object.ID, n.Object.Point.Pos.X, n.Object.Point.Pos.Y, n.Object.Point.Pos.Z,
			n.LB, n.UB)
	}
}

// remoteSKQL sends statements to a running skserve or skcoord: EXPLAIN
// statements via POST /v1/explain (printing the service-rendered plan),
// everything else via POST /v1/query.
func remoteSKQL(base string, timeout time.Duration) stmtExec {
	cli := client.New(base)
	return func(src string) bool {
		ctx := context.Background()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		if isExplain(src) {
			res, _, err := cli.Explain(ctx, api.ExplainRequest{Q: src})
			if err != nil {
				printDiag(src, err)
				return false
			}
			fmt.Print(res.Text)
			fmt.Printf("epoch %d\n", res.Epoch)
			return true
		}
		res, meta, err := cli.Query(ctx, api.QueryRequest{Q: src})
		if err != nil {
			printDiag(src, err)
			return false
		}
		switch {
		case res.Distance != nil:
			d := res.Distance
			fmt.Printf("distance ∈ [%.2f, %.2f] m (accuracy %.4f, %d iterations)\n",
				float64(d.LB), float64(d.UB), d.Accuracy, d.Iterations)
		case res.Subscription != nil:
			fmt.Printf("subscription %d registered, safe radius %.2f m\n",
				res.Subscription.ID, float64(res.Subscription.SafeRadius))
			printWireNeighbors(res.Neighbors)
		default:
			printWireNeighbors(res.Neighbors)
		}
		fmt.Printf("cost: %d pages, %d µs cpu, %d µs elapsed (%s)\n",
			res.Cost.Pages, res.Cost.CPUUs, res.Cost.ElapsedUs, res.Algorithm)
		if meta.Cache != "" {
			fmt.Printf("epoch %d, cache %s\n", meta.Epoch, meta.Cache)
		} else {
			fmt.Printf("epoch %d\n", meta.Epoch)
		}
		return true
	}
}

func printWireNeighbors(ns []api.Neighbor) {
	for i, n := range ns {
		fmt.Printf("%2d. object %-4d at (%.1f, %.1f, %.1f)  dS ∈ [%.2f, %.2f]\n",
			i+1, n.ID, n.X, n.Y, n.Z, float64(n.LB), float64(n.UB))
	}
}

// isExplain reports whether the statement's first keyword is EXPLAIN
// (case-insensitive), without a full parse — routing only; the service
// still authoritatively parses.
func isExplain(src string) bool {
	fields := strings.Fields(src)
	return len(fields) > 0 && strings.EqualFold(fields[0], "EXPLAIN")
}

func loadOrSynthesize(path, preset string, size int, cell float64, seed int64) (*dem.Grid, error) {
	if path != "" {
		return dem.ReadFile(path)
	}
	var p dem.Preset
	switch strings.ToUpper(preset) {
	case "BH":
		p = dem.BH
	case "EP":
		p = dem.EP
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
	return dem.Synthesize(p, size, cell, seed), nil
}

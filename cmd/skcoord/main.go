// Command skcoord is the scatter-gather front of a sharded surfknn
// deployment: it loads a shard manifest (written by skgen -tiles), verifies
// every shard answers as the tile the manifest claims, and serves the same
// public HTTP API as a standalone skserve — answers assembled across the
// fleet, bit-identical to an unsharded server over the union of the
// objects.
//
// Usage:
//
//	skgen -preset BH -size 64 -db bh.skdb -db-objects 200 -tiles 2x2
//	skserve -snapshot bh-tile-0-0.skdb -shard-id tile-0-0 -addr 127.0.0.1:8081 &
//	skserve -snapshot bh-tile-1-0.skdb -shard-id tile-1-0 -addr 127.0.0.1:8082 &
//	... one skserve per tile ...
//	skcoord -manifest bh.manifest.json -addrs 127.0.0.1:8081,127.0.0.1:8082,... -addr 127.0.0.1:8080
//	curl -s localhost:8080/v1/knn -d '{"x":3200,"y":3200,"k":5}'
//
// -addrs assigns shard addresses in manifest order (row-major by tile, so
// tile-0-0, tile-1-0, ..., tile-0-1, ...); a manifest whose entries already
// carry addresses needs no -addrs. Updates through the coordinator are
// routed to the owning tile under fleet-wide lockstep epochs; when a shard
// is down, queries that need it answer 503 shard_unavailable rather than a
// silently partial result. Metrics are at /debug/vars under
// "surfknn_coord".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"surfknn/internal/obs"
	"surfknn/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("skcoord: ")
	fs := flag.NewFlagSet("skcoord", flag.ContinueOnError)
	var (
		manifest = fs.String("manifest", "", "shard manifest written by skgen -tiles (required)")
		addrs    = fs.String("addrs", "", "comma-separated shard addresses, assigned in manifest order")
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		timeout  = fs.Duration("shard-timeout", 0, "per-shard call deadline (0 = 10s)")
		retries  = fs.Int("retries", 2, "retries per saturated (429) shard call")
		grace    = fs.Duration("grace", 30*time.Second, "shutdown drain deadline")
	)
	fs.SetOutput(io.Discard)
	fs.Usage = func() {}
	if err := fs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "usage: skcoord -manifest fleet.manifest.json [-addrs a,b,...] [flags]\n\nflags:\n")
			fs.SetOutput(os.Stderr)
			fs.PrintDefaults()
			os.Exit(0)
		}
		log.Fatalf("%v (run skcoord -h for usage)", err)
	}
	if *manifest == "" {
		log.Fatal("no manifest given: pass -manifest fleet.manifest.json (from skgen -tiles)")
	}

	man, err := shard.ReadManifest(*manifest)
	if err != nil {
		log.Fatal(err)
	}
	if *addrs != "" {
		list := strings.Split(*addrs, ",")
		if len(list) != len(man.Shards) {
			log.Fatalf("-addrs names %d shards, manifest has %d", len(list), len(man.Shards))
		}
		for i := range man.Shards {
			man.Shards[i].Addr = strings.TrimSpace(list[i])
		}
	}

	stats := obs.NewCoordStats()
	if err := stats.Publish("surfknn_coord"); err != nil {
		log.Fatal(err)
	}
	coord, err := shard.New(shard.Config{
		Manifest:     man,
		ShardTimeout: *timeout,
		Retries:      *retries,
		Stats:        stats,
	})
	if err != nil {
		log.Fatal(err)
	}
	verifyCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	err = coord.Verify(verifyCtx)
	cancel()
	if err != nil {
		log.Fatalf("fleet verification failed: %v", err)
	}
	fmt.Printf("fleet: %dx%d tiles, %d shards verified\n", man.NX, man.NY, len(man.Shards))

	mux := http.NewServeMux()
	mux.Handle("/debug/vars", http.DefaultServeMux) // expvar registers there
	mux.Handle("/", coord.Handler())
	hs := &http.Server{Handler: mux}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The announce line is the machine-readable contract scripts/check.sh
	// scrapes, mirroring skserve's.
	fmt.Printf("# skcoord listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Printf("# shutting down: draining in-flight requests (grace %v)\n", *grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	fmt.Println("# bye")
}

// Quickstart: build a synthetic terrain, index a few objects and answer a
// surface k-NN query with MR3 — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. A terrain: 33×33 elevation samples, 50 m apart (1.6 km × 1.6 km),
	//    using the rugged "BH" preset.
	grid := dem.Synthesize(dem.BH, 32, 50, 42)
	surface := mesh.FromGrid(grid)
	fmt.Printf("terrain: %d vertices, %d triangles, %.2f km²\n",
		surface.NumVerts(), surface.NumFaces(), grid.AreaKm2())

	// 2. The terrain database: builds the DMTM (multiresolution mesh with
	//    distance annotation), the MSDN (support distance networks) and the
	//    paged stores, all derived from the surface.
	db, err := core.BuildTerrainDB(surface, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Objects on the surface (uniformly placed here; any surface points
	//    work) and the 2-D R-tree over their projections.
	objects, err := workload.RandomObjects(surface, db.Loc, 50, 7)
	if err != nil {
		log.Fatal(err)
	}
	db.SetObjects(objects)

	// 4. A query point anywhere on the surface.
	q, err := db.SurfacePointAt(geom.Vec2{X: 800, Y: 800})
	if err != nil {
		log.Fatal(err)
	}

	// 5. The surface 5-NN query, using the s=1 resolution schedule.
	res, err := db.MR3(q, 5, core.S1, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query at (%.0f, %.0f, %.0f):\n", q.Pos.X, q.Pos.Y, q.Pos.Z)
	for i, n := range res.Neighbors {
		euclid := q.Pos.Dist(n.Object.Point.Pos)
		fmt.Printf("  %d. object %-3d surface distance ∈ [%.1f, %.1f] m (straight line %.1f m)\n",
			i+1, n.Object.ID, n.LB, n.UB, euclid)
	}
	fmt.Printf("cost: %s\n", res.Metrics())
}

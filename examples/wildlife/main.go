// Wildlife monitoring: the paper's motivating application (§1). Animal
// groups inhabit a rugged terrain; a new sighting must be assigned to the
// group whose members are nearest *along the surface* — Euclidean distance
// misranks groups separated by a ridge. The example also finds each group's
// nearest water source by surface distance and the closest pair of groups
// (migration-corridor analysis).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/workload"
)

func main() {
	log.SetFlags(0)
	grid := dem.Synthesize(dem.BH, 64, 50, 2026)
	surface := mesh.FromGrid(grid)
	db, err := core.BuildTerrainDB(surface, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ext := surface.Extent()
	rng := rand.New(rand.NewSource(11))

	// Three animal groups: clusters of sightings around a den site each.
	groupDens := []geom.Vec2{
		{X: ext.MinX + ext.Width()*0.22, Y: ext.MinY + ext.Height()*0.25},
		{X: ext.MinX + ext.Width()*0.72, Y: ext.MinY + ext.Height()*0.30},
		{X: ext.MinX + ext.Width()*0.50, Y: ext.MinY + ext.Height()*0.78},
	}
	var objs []workload.Object
	groupOf := map[int64]int{}
	for gi, den := range groupDens {
		for s := 0; s < 8; s++ {
			p := geom.Vec2{
				X: den.X + rng.NormFloat64()*ext.Width()*0.04,
				Y: den.Y + rng.NormFloat64()*ext.Height()*0.04,
			}
			sp, err := mesh.MakeSurfacePoint(surface, db.Loc, p)
			if err != nil {
				continue
			}
			id := int64(len(objs))
			objs = append(objs, workload.Object{ID: id, Point: sp})
			groupOf[id] = gi
		}
	}
	db.SetObjects(objs)
	fmt.Printf("%d sightings across %d groups on %.1f km² of rugged terrain\n",
		len(objs), len(groupDens), grid.AreaKm2())

	// A new sighting between the groups: classify by surface 3-NN vote.
	sighting, err := db.SurfacePointAt(geom.Vec2{
		X: ext.MinX + ext.Width()*0.45,
		Y: ext.MinY + ext.Height()*0.45,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := db.MR3(sighting, 3, core.S1, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	votes := map[int]int{}
	fmt.Printf("\nnew sighting at (%.0f, %.0f):\n", sighting.Pos.X, sighting.Pos.Y)
	for _, n := range res.Neighbors {
		g := groupOf[n.Object.ID]
		votes[g]++
		fmt.Printf("  neighbour %d from group %d, surface distance ≤ %.0f m\n",
			n.Object.ID, g, n.UB)
	}
	best, bestVotes := -1, 0
	for g, v := range votes {
		if v > bestVotes {
			best, bestVotes = g, v
		}
	}
	fmt.Printf("assigned to group %d (%d of 3 votes)\n", best, bestVotes)

	// Euclidean ranking for contrast: does the straight-line nearest
	// sighting belong to a different group?
	bestE, bestD := -1, math.Inf(1)
	for _, o := range objs {
		if d := sighting.Pos.Dist(o.Point.Pos); d < bestD {
			bestD = d
			bestE = groupOf[o.ID]
		}
	}
	if bestE != best {
		fmt.Printf("note: Euclidean 1-NN would have chosen group %d — the surface metric disagrees\n", bestE)
	} else {
		fmt.Printf("(Euclidean 1-NN agrees here; on ridge-separated groups it often would not)\n")
	}

	// Foraging range: sightings within 1.5 km of travel from the den of
	// group 0 (surface range query).
	den, err := db.SurfacePointAt(groupDens[0])
	if err != nil {
		log.Fatal(err)
	}
	rangeRes, err := db.SurfaceRange(den, 1500, core.S2, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d sightings within 1.5 km of travel from group 0's den\n", len(rangeRes.Neighbors))

	// Closest pair of sightings overall (inter-group corridor analysis).
	a, b, err := db.ClosestPair(core.S2, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closest pair of sightings: %d (group %d) and %d (group %d), %.0f m apart along the surface\n",
		a.Object.ID, groupOf[a.Object.ID], b.Object.ID, groupOf[b.Object.ID], a.UB)
}

// Accuracy demo: watch the distance range [lb, ub] of one point pair
// converge as MR3 walks its resolution ladder — §5.3's "what is the surface
// distance between a and b within accuracy 95%" query answered directly
// from the multiresolution structures, without ever running an exact
// geodesic algorithm.
package main

import (
	"fmt"
	"log"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/multires"
)

func main() {
	log.SetFlags(0)
	grid := dem.Synthesize(dem.BH, 64, 50, 77)
	surface := mesh.FromGrid(grid)
	db, err := core.BuildTerrainDB(surface, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ext := surface.Extent()
	a, err := db.SurfacePointAt(geom.Vec2{X: ext.MinX + ext.Width()*0.15, Y: ext.MinY + ext.Height()*0.2})
	if err != nil {
		log.Fatal(err)
	}
	b, err := db.SurfacePointAt(geom.Vec2{X: ext.MinX + ext.Width()*0.85, Y: ext.MinY + ext.Height()*0.75})
	if err != nil {
		log.Fatal(err)
	}
	euclid := a.Pos.Dist(b.Pos)
	fmt.Printf("a = (%.0f, %.0f, %.0f)\nb = (%.0f, %.0f, %.0f)\n",
		a.Pos.X, a.Pos.Y, a.Pos.Z, b.Pos.X, b.Pos.Y, b.Pos.Z)
	fmt.Printf("Euclidean distance: %.1f m\n\n", euclid)

	sched := core.S1
	lb, ub := euclid, 0.0
	fmt.Printf("%-12s %-12s %12s %12s %10s\n", "DMTM res", "MSDN res", "lb (m)", "ub (m)", "ε=lb/ub")
	for it := 0; it < sched.Steps(); it++ {
		dmRes, sdnRes := sched.At(it)
		// Upper bound at this DMTM level (running minimum).
		var u float64
		if dmRes >= core.PathnetResolution {
			u, _ = db.Path.Distance(a, b)
		} else {
			tm := db.Tree.TimeForResolution(dmRes)
			u = db.Tree.UpperBound(surface, a, b, tm, multires.IncludeAll).UB
		}
		if ub == 0 || u < ub {
			ub = u
		}
		// Lower bound within the current search ellipse (running maximum).
		region := geom.NewEllipse(a.XY(), b.XY(), ub).MBR()
		if region.IsEmpty() {
			region = ext
		}
		est := db.MSDN.LowerBound(a.Pos, b.Pos, region, sdnRes)
		if est.LB > lb {
			lb = est.LB
		}
		if lb > ub {
			lb = ub
		}
		fmt.Printf("%-12s %-12s %12.1f %12.1f %9.1f%%\n",
			resLabel(dmRes), resLabel(sdnRes), lb, ub, 100*lb/ub)
	}
	fmt.Printf("\nfinal answer: surface distance ∈ [%.1f, %.1f] m (%.1f%% above Euclidean)\n",
		lb, ub, (ub/euclid-1)*100)
}

func resLabel(r float64) string {
	if r >= core.PathnetResolution {
		return "200%(net)"
	}
	return fmt.Sprintf("%g%%", r*100)
}

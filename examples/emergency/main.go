// Emergency scene coordination: §1 lists "emergency scene coordination
// (e.g., to fight bush fires)" among sk-NN's applications. A fire ignites
// on rugged terrain; command needs (a) the crews nearest to it by actual
// ground travel, (b) which crews can reach it within a response-time
// budget, and (c) the evacuation isochrone — the terrain reachable from the
// ignition point within a walking budget — computed with the exact geodesic
// field.
package main

import (
	"fmt"
	"log"
	"math"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/geodesic"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/workload"
)

func main() {
	log.SetFlags(0)
	grid := dem.Synthesize(dem.BH, 32, 50, 911)
	surface := mesh.FromGrid(grid)
	db, err := core.BuildTerrainDB(surface, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Fire crews stationed around the area.
	crews, err := workload.RandomObjects(surface, db.Loc, 12, 3)
	if err != nil {
		log.Fatal(err)
	}
	db.SetObjects(crews)

	ext := surface.Extent()
	fire, err := db.SurfacePointAt(geom.Vec2{
		X: ext.MinX + ext.Width()*0.6,
		Y: ext.MinY + ext.Height()*0.55,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fire reported at (%.0f, %.0f), elevation %.0f m; %d crews in the field\n",
		fire.Pos.X, fire.Pos.Y, fire.Pos.Z, len(crews))

	// (a) The three crews nearest by ground travel.
	res, err := db.MR3(fire, 3, core.S1, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnearest crews by surface distance:")
	for i, n := range res.Neighbors {
		straight := fire.Pos.Dist(n.Object.Point.Pos)
		fmt.Printf("  %d. crew %-3d ≤ %.0f m of travel (%.0f m line of sight)\n",
			i+1, n.Object.ID, n.UB, straight)
	}

	// (b) Response budget: crews within 800 m of travel.
	budget := 800.0
	within, err := db.SurfaceRange(fire, budget, core.S2, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d crew(s) within the %.0f m response budget\n", len(within.Neighbors), budget)

	// (c) Evacuation isochrone: how much terrain lies within 400 m of
	// ground travel from the ignition point (exact geodesic field).
	solver := geodesic.NewSolver(surface)
	radius := 400.0
	iso := solver.Isochrone(fire, radius)
	fmt.Printf("\n%d of %d terrain vertices lie within %.0f m of ground travel\n",
		len(iso), surface.NumVerts(), radius)
	// Farthest reachable elevation within the zone (fire spreads uphill).
	maxZ, maxD := math.Inf(-1), 0.0
	for v, d := range iso {
		if z := surface.Verts[v].Z; z > maxZ {
			maxZ, maxD = z, d
		}
	}
	fmt.Printf("highest point in the zone: %.0f m elevation, %.0f m of travel away\n", maxZ, maxD)

	// Line-of-sight vs ground travel: the ratio commanders must plan for.
	if len(res.Neighbors) > 0 {
		n := res.Neighbors[0]
		ratio := n.UB / fire.Pos.Dist(n.Object.Point.Pos)
		fmt.Printf("\nground travel to the nearest crew is %.1f× the line-of-sight distance\n", ratio)
	}
}

// Rover mission planning: another §1 application ("rover path planning ...
// a path is constrained to be on or near the surface"). A rover at a lander
// must visit the nearest scientific targets; travel cost is distance along
// the terrain, not through the air. The example ranks targets by surface
// distance with MR3, extracts the actual traverse polyline from the
// pathnet, and reports how badly the straight-line ranking would have
// misordered the visits.
package main

import (
	"fmt"
	"log"
	"sort"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/workload"
)

func main() {
	log.SetFlags(0)
	grid := dem.Synthesize(dem.BH, 64, 40, 314)
	surface := mesh.FromGrid(grid)
	db, err := core.BuildTerrainDB(surface, core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ext := surface.Extent()

	// Scientific targets scattered over the site.
	targets, err := workload.RandomObjects(surface, db.Loc, 30, 99)
	if err != nil {
		log.Fatal(err)
	}
	db.SetObjects(targets)

	lander, err := db.SurfacePointAt(ext.Center())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lander at (%.0f, %.0f, %.0f) among %d targets\n",
		lander.Pos.X, lander.Pos.Y, lander.Pos.Z, len(targets))

	k := 5
	res, err := db.MR3(lander, k, core.S1, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// MR3 guarantees the SET of k nearest; compute the exact traverse for
	// each winner to order the visit plan.
	type visit struct {
		n    core.Neighbor
		d    float64
		path []geom.Vec3
	}
	visits := make([]visit, 0, k)
	for _, n := range res.Neighbors {
		d, path := db.Path.Distance(lander, n.Object.Point)
		visits = append(visits, visit{n, d, path})
	}
	sort.Slice(visits, func(i, j int) bool { return visits[i].d < visits[j].d })

	fmt.Printf("\n%d nearest targets by traverse distance:\n", k)
	for i, v := range visits {
		straight := lander.Pos.Dist(v.n.Object.Point.Pos)
		climb := 0.0
		for j := 1; j < len(v.path); j++ {
			if dz := v.path[j].Z - v.path[j-1].Z; dz > 0 {
				climb += dz
			}
		}
		fmt.Printf("  %d. target %-3d traverse %.0f m (straight %.0f m, +%.0f%% overhead, %.0f m of climb, %d waypoints)\n",
			i+1, v.n.Object.ID, v.d, straight, (v.d/straight-1)*100, climb, len(v.path))
	}

	// How different is the Euclidean ranking? Count rank inversions in the
	// top-k.
	type byDist struct {
		id int64
		d  float64
	}
	var euclid []byDist
	for _, o := range targets {
		euclid = append(euclid, byDist{o.ID, lander.Pos.Dist(o.Point.Pos)})
	}
	sort.Slice(euclid, func(i, j int) bool { return euclid[i].d < euclid[j].d })
	euclidTop := map[int64]bool{}
	for _, e := range euclid[:k] {
		euclidTop[e.id] = true
	}
	diff := 0
	for _, n := range res.Neighbors {
		if !euclidTop[n.Object.ID] {
			diff++
		}
	}
	fmt.Printf("\n%d of the %d surface-nearest targets are NOT in the Euclidean top-%d\n", diff, k, k)

	// Energy budget: which targets are reachable within a 1.2 km traverse?
	budget := 1200.0
	within, err := db.SurfaceRange(lander, budget, core.S2, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d targets reachable within a %.0f m traverse budget\n", len(within.Neighbors), budget)

	// Vehicle stability: the rover cannot climb steep faces. Re-rank under
	// the traversability constraint (the paper's §6 obstacle extension);
	// some targets detour, some become unreachable. Loosen the limit until
	// the lander itself sits on traversable ground.
	maxSlope := 35.0
	for !core.SlopeMask(surface, maxSlope)(lander.Face) {
		maxSlope += 5
	}
	stable, err := db.MaskedKNN(lander, k, core.SlopeMask(surface, maxSlope))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d targets reachable at ≤%.0f° slope:\n", len(stable), maxSlope)
	for i, n := range stable {
		free := db.ReferenceDistance(lander, n.Object.Point)
		fmt.Printf("  %d. target %-3d constrained traverse %.0f m (unconstrained %.0f m)\n",
			i+1, n.Object.ID, n.UB, free)
	}

	// Print the traverse to the nearest target as a drive plan.
	if len(visits) > 0 {
		first := visits[0].n
		path := visits[0].path
		fmt.Printf("\ndrive plan to target %d:\n", first.Object.ID)
		step := len(path) / 6
		if step < 1 {
			step = 1
		}
		for j := 0; j < len(path); j += step {
			fmt.Printf("  waypoint %2d: (%.0f, %.0f, %.0f)\n", j, path[j].X, path[j].Y, path[j].Z)
		}
		last := path[len(path)-1]
		fmt.Printf("  arrive:      (%.0f, %.0f, %.0f)\n", last.X, last.Y, last.Z)
	}
}

// Package surfknn answers k-nearest-neighbour queries over terrain
// surfaces where distance is measured along the surface, implementing
// "Surface k-NN Query Processing" (Deng, Zhou, Shen, Xu, Lin — ICDE 2006).
//
// The workflow is: synthesize or load a terrain grid, triangulate it, build
// a TerrainDB (which derives the paper's DMTM and MSDN multiresolution
// structures and the paged stores), install objects, and query:
//
//	grid    := surfknn.Synthesize(surfknn.BH, 64, 50, 42)
//	surface := surfknn.FromGrid(grid)
//	db, _   := surfknn.BuildTerrainDB(surface, surfknn.Config{})
//	objs, _ := surfknn.RandomObjects(surface, db.Loc, 100, 7)
//	db.SetObjects(objs)
//	q, _    := db.SurfacePointAt(surfknn.Vec2{X: 800, Y: 800})
//	res, _  := db.MR3(q, 5, surfknn.S1, surfknn.Options{})
//
// The terrain itself is immutable once built, so queries always run
// concurrently. The object set is versioned: Insert, Delete and Upsert on
// the TerrainDB's ObjectStore publish a new immutable epoch while in-flight
// queries keep reading the epoch they pinned — no locks on the query path,
// no stop-the-world. For repeated, cancellable, or concurrent querying,
// create one Session per goroutine instead of calling the one-shot forms:
//
//	s := db.NewSession(ctx)
//	for _, q := range queries {
//		res, err := s.MR3(q, 5, surfknn.S1, surfknn.Options{})
//		...
//	}
//
// This file is the public facade over the implementation packages in
// internal/; the aliases below are the supported API surface.
package surfknn

import (
	"io"
	"net/http"
	"time"

	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/geodesic"
	"surfknn/internal/geom"
	"surfknn/internal/mesh"
	"surfknn/internal/objstore"
	"surfknn/internal/obs"
	"surfknn/internal/pathnet"
	"surfknn/internal/stats"
	"surfknn/internal/workload"
)

// Geometry primitives.
type (
	// Vec2 is a point in the (x,y) plane.
	Vec2 = geom.Vec2
	// Vec3 is a point in space; Z is elevation.
	Vec3 = geom.Vec3
	// MBR is an axis-aligned rectangle in the (x,y) plane.
	MBR = geom.MBR
)

// Terrain data.
type (
	// Grid is a regular elevation grid (the DEM).
	Grid = dem.Grid
	// Preset selects a synthetic terrain character.
	Preset = dem.Preset
	// Mesh is the triangulated terrain surface.
	Mesh = mesh.Mesh
	// SurfacePoint is a point on the surface with its containing face.
	SurfacePoint = mesh.SurfacePoint
)

// Synthetic terrain presets calibrated after the paper's two datasets.
var (
	// BH is the rugged preset (Bearhead Mountain stand-in).
	BH = dem.BH
	// EP is the smooth preset (Eagle Peak stand-in).
	EP = dem.EP
)

// Synthesize generates a deterministic synthetic terrain: a (size+1)²
// sample grid (size must be a power of two) spaced cellSize metres apart.
func Synthesize(p Preset, size int, cellSize float64, seed int64) *Grid {
	return dem.Synthesize(p, size, cellSize, seed)
}

// ReadGridFile loads a terrain written by (*Grid).WriteFile or cmd/skgen.
func ReadGridFile(path string) (*Grid, error) { return dem.ReadFile(path) }

// FromGrid triangulates an elevation grid into a surface mesh.
func FromGrid(g *Grid) *Mesh { return mesh.FromGrid(g) }

// Query engine.
type (
	// TerrainDB bundles a surface with every structure sk-NN queries need.
	TerrainDB = core.TerrainDB
	// Config tunes TerrainDB construction (pathnet level, buffer pool,
	// simulated page cost). The zero value uses the paper's settings.
	Config = core.Config
	// Options tunes query execution; the zero value enables every paper
	// optimisation. Build one as a struct literal or with NewOptions.
	Options = core.Options
	// Option is a functional Options setting (see NewOptions).
	Option = core.Option
	// Schedule is a resolution step-length schedule (§5.3).
	Schedule = core.Schedule
	// Result is a query result: the neighbours plus the structured Cost
	// breakdown (and, when tracing, the phase Trace).
	Result = core.Result
	// Cost is a query's structured cost: per-phase wall time, page accesses
	// split into buffer-pool hits/misses and R-tree visits, and the work
	// counters. Result.Metrics() derives the legacy flat view.
	Cost = stats.Cost
	// PhaseCost is one phase's slice of a Cost.
	PhaseCost = stats.PhaseCost
	// Metrics is the legacy flat cost view.
	Metrics = stats.Metrics
	// Trace is a query's phase trace: one timed span per query phase and
	// per LOD refinement iteration. Enable with (*Session).SetTracing.
	Trace = obs.Trace
	// Registry is the process-wide observability registry: atomic counters
	// and latency histograms fed by every query on an instrumented
	// TerrainDB. Publish exposes it on /debug/vars.
	Registry = obs.Registry
	// SlowQueryLog writes one JSON line per query slower than a threshold.
	// Install on a Registry with SetSlowLog.
	SlowQueryLog = obs.SlowQueryLog
	// Neighbor is one result entry with its distance range.
	Neighbor = core.Neighbor
	// Object is an indexed data point on the surface.
	Object = workload.Object
	// Session is a per-query handle on a TerrainDB: it carries a
	// context.Context for cancellation/deadlines and owns the reusable
	// per-query scratch (candidate state, Dijkstra buffers, page
	// accounting). The terrain is immutable and each query pins one object
	// epoch for its whole run, so any number of sessions may query (and the
	// object set may be updated) concurrently — one goroutine per Session.
	// Create one with (*TerrainDB).NewSession; the query methods on
	// TerrainDB itself are one-shot shorthands that allocate a throwaway
	// session per call.
	Session = core.Session
)

// Dynamic objects. Every TerrainDB owns a versioned object store; updates
// publish new immutable epochs while queries keep reading the one they
// pinned (see DESIGN.md, "Dynamic objects & epochs").
type (
	// ObjectStore is the epoch-versioned object store behind a TerrainDB.
	// Obtain it with (*TerrainDB).ObjectStore; Insert/Delete/Upsert each
	// publish a new epoch visible to subsequent queries only.
	ObjectStore = objstore.Store
	// ObjectEpoch is one immutable version of the object set. Pin returns
	// one; Release it when done so its memory can be reclaimed.
	ObjectEpoch = objstore.Epoch
)

// The paper's three step-length schedules.
var (
	// S1 walks every resolution level (most I/O, tightest refinement).
	S1 = core.S1
	// S2 skips every other level.
	S2 = core.S2
	// S3 jumps almost directly to full resolution (fewest iterations).
	S3 = core.S3
)

// BuildTerrainDB derives the DMTM, MSDN and paged stores from a surface —
// the paper's offline preprocessing step.
func BuildTerrainDB(m *Mesh, cfg Config) (*TerrainDB, error) {
	return core.BuildTerrainDB(m, cfg)
}

// NewOptions builds an Options value from functional settings; unlike the
// struct fields, fraction arguments are taken literally (WithStep2Accuracy(0)
// really means 0). With no arguments it equals Options{}.
func NewOptions(opts ...Option) Options { return core.NewOptions(opts...) }

// Functional Options settings (see internal/core/options.go for semantics).
var (
	WithStep2Accuracy    = core.WithStep2Accuracy
	WithOverlapThreshold = core.WithOverlapThreshold
	WithIOIntegration    = core.WithIOIntegration
	WithDummyLB          = core.WithDummyLB
	WithBothFamilyLB     = core.WithBothFamilyLB
)

// Observability. Instrument a TerrainDB with a Registry to feed the
// process-wide counters, publish the registry on /debug/vars, and serve the
// debug endpoints:
//
//	reg := surfknn.NewRegistry()
//	db.Instrument(reg)
//	_ = reg.Publish("surfknn")
//	srv, addr, _ := surfknn.StartDebugServer("127.0.0.1:8080")
//	defer srv.Close()

// NewRegistry creates an observability registry (all counters zero).
func NewRegistry() *Registry { return obs.NewRegistry() }

// StartDebugServer serves /debug/vars and /debug/pprof/* on addr in a
// background goroutine, returning the resolved listen address (useful with
// port 0).
func StartDebugServer(addr string) (*http.Server, string, error) {
	return obs.StartDebugServer(addr)
}

// NewSlowQueryLog writes queries slower than threshold to w as JSON lines
// (threshold 0 logs every query). Install with Registry.SetSlowLog.
func NewSlowQueryLog(w io.Writer, threshold time.Duration) *SlowQueryLog {
	return obs.NewSlowQueryLog(w, threshold)
}

// ErrBadSnapshot marks a snapshot file rejected as structurally invalid or
// corrupt (bad magic, implausible counts, checksum mismatch) rather than
// unreadable. Select it with errors.Is.
var ErrBadSnapshot = core.ErrBadSnapshot

// LoadTerrainDB reads a snapshot written by (*TerrainDB).SaveFile.
func LoadTerrainDB(path string, cfg Config) (*TerrainDB, error) {
	return core.LoadFile(path, cfg)
}

// RandomObjects places n objects uniformly at random on the surface.
func RandomObjects(m *Mesh, loc *mesh.Locator, n int, seed int64) ([]Object, error) {
	return workload.RandomObjects(m, loc, n, seed)
}

// UniformObjects places objects with the given density (objects per km²).
func UniformObjects(m *Mesh, loc *mesh.Locator, densityPerKm2 float64, seed int64) ([]Object, error) {
	return workload.UniformObjects(m, loc, densityPerKm2, seed)
}

// Surface distances outside the query engine.

// ExactDistance computes the exact geodesic distance between two surface
// points (Chen–Han-style window propagation). Exponentially more expensive
// than the query engine's bounds — intended for small meshes and ground
// truth.
func ExactDistance(m *Mesh, a, b SurfacePoint) float64 {
	return geodesic.Distance(m, a, b)
}

// Refiner computes approximate surface distances by Kanai–Suzuki selective
// refinement (the paper's EA distance computation).
type Refiner = pathnet.Refiner

// NewRefiner creates a refiner for the mesh with the paper's 3% tolerance.
func NewRefiner(m *Mesh, loc *mesh.Locator) *Refiner {
	return pathnet.NewRefiner(m, loc)
}

// Constrained traversal (the paper's §6 obstacle-constraint future work).
type (
	// FaceMask marks terrain faces as traversable.
	FaceMask = core.FaceMask
	// DistanceRange brackets a surface distance with its accuracy.
	DistanceRange = core.DistanceRange
)

// SlopeMask admits faces no steeper than maxSlopeDeg (rover stability).
func SlopeMask(m *Mesh, maxSlopeDeg float64) FaceMask {
	return core.SlopeMask(m, maxSlopeDeg)
}

// RegionMask blocks faces whose centroids fall inside the obstacle
// rectangles.
func RegionMask(m *Mesh, obstacles []MBR) FaceMask {
	return core.RegionMask(m, obstacles)
}

// AndMask combines masks conjunctively.
func AndMask(masks ...FaceMask) FaceMask { return core.AndMask(masks...) }

// ReadArcGrid parses an Esri ASCII grid (.asc) DEM — the interchange format
// for real USGS-style elevation data.
func ReadArcGrid(r io.Reader) (*Grid, error) { return dem.ReadArcGrid(r) }

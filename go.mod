module surfknn

go 1.22

package surfknn_test

import (
	"fmt"

	"surfknn"
)

// ExampleTerrainDB_MR3 runs the canonical surface k-NN query end to end.
func ExampleTerrainDB_MR3() {
	grid := surfknn.Synthesize(surfknn.BH, 16, 50, 42)
	surface := surfknn.FromGrid(grid)
	db, err := surfknn.BuildTerrainDB(surface, surfknn.Config{})
	if err != nil {
		panic(err)
	}
	objs, err := surfknn.RandomObjects(surface, db.Loc, 20, 7)
	if err != nil {
		panic(err)
	}
	db.SetObjects(objs)

	q, err := db.SurfacePointAt(surfknn.Vec2{X: 400, Y: 400})
	if err != nil {
		panic(err)
	}
	res, err := db.MR3(q, 3, surfknn.S1, surfknn.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Neighbors), "neighbours found")
	for _, n := range res.Neighbors {
		if n.LB > n.UB {
			fmt.Println("invalid range!")
		}
	}
	// Output: 3 neighbours found
}

// ExampleTerrainDB_SurfaceRange finds every object within a travel budget.
func ExampleTerrainDB_SurfaceRange() {
	grid := surfknn.Synthesize(surfknn.EP, 16, 50, 1)
	surface := surfknn.FromGrid(grid)
	db, err := surfknn.BuildTerrainDB(surface, surfknn.Config{})
	if err != nil {
		panic(err)
	}
	objs, err := surfknn.RandomObjects(surface, db.Loc, 30, 2)
	if err != nil {
		panic(err)
	}
	db.SetObjects(objs)

	q, err := db.SurfacePointAt(surfknn.Vec2{X: 400, Y: 400})
	if err != nil {
		panic(err)
	}
	res, err := db.SurfaceRange(q, 1e9, surfknn.S2, surfknn.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Neighbors) == len(objs))
	// Output: true
}

// ExampleExactDistance compares the exact geodesic with the straight line.
func ExampleExactDistance() {
	grid := surfknn.Synthesize(surfknn.BH, 8, 50, 3)
	surface := surfknn.FromGrid(grid)
	db, err := surfknn.BuildTerrainDB(surface, surfknn.Config{})
	if err != nil {
		panic(err)
	}
	a, _ := db.SurfacePointAt(surfknn.Vec2{X: 30, Y: 30})
	b, _ := db.SurfacePointAt(surfknn.Vec2{X: 370, Y: 360})
	exact := surfknn.ExactDistance(surface, a, b)
	chord := a.Pos.Dist(b.Pos)
	fmt.Println(exact >= chord-1e-9)
	// Output: true
}

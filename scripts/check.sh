#!/usr/bin/env bash
# check.sh — the full verification gate, exactly what CI runs.
#
#   build → vet → sklint (self-hosted lint) → race tests → parallel-bench
#   smoke → debug endpoint smoke → server smoke → fuzz smoke
#
# Fail-fast: the first failing stage aborts the run with its exit code.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== sklint =="
# Machine-readable diagnostics; on GitHub CI each finding is also emitted
# as a ::error annotation routed to the offending file and line. The
# committed hotpath-alloc baseline (lint.baseline.json) is applied inside
# sklint: recorded allocation debt passes, NEW debt fails — the ratchet
# only turns toward zero. Pay debt down with
#   go run ./cmd/sklint -write-baseline ./...
sklint_flags=(-json)
if [ -n "${GITHUB_ACTIONS:-}" ]; then
    sklint_flags+=(-github)
fi
go run ./cmd/sklint "${sklint_flags[@]}" ./...

echo "== sklint baseline budget =="
# The recorded hotpath-alloc debt must keep shrinking: after the SoA
# flat-buffer refactor the budget is 10 findings. A higher total means new
# debt was baselined instead of paid down.
baseline_total=$(grep -o ': [0-9]*' lint.baseline.json | awk '{s+=$2} END{print s+0}')
echo "baseline total: $baseline_total (budget 10)"
if [ "$baseline_total" -gt 10 ]; then
    echo "lint.baseline.json records $baseline_total findings, budget is 10" >&2
    exit 1
fi

echo "== sklint self-test (negative fixtures must fail) =="
# Each fixture package contains known findings; sklint exiting 0 on one
# would mean a rule silently stopped detecting anything.
for fixture in internal/lint/testdata/src/*/; do
    if go run ./cmd/sklint "./$fixture" >/dev/null 2>&1; then
        echo "sklint reported no findings on negative fixture $fixture" >&2
        exit 1
    fi
done

echo "== tests (race) =="
go test -race ./...

echo "== parallel benchmark smoke =="
# One iteration of the concurrent-query benchmarks: proves the session API
# still runs the parallel path (the race tests above prove it is safe), of
# the serving-layer benchmarks (handler chain cold and cache-hit), of the
# update-mix benchmark (queries interleaved with epoch publications), and
# of the continuous-subscription benchmark (safe-region hit rate vs step).
go test -run '^$' -bench 'SequentialKNN|ParallelKNN|ServerKNN|KNNUnderUpdates|ContinuousKNN' -benchtime=1x .

echo "== allocation budget =="
# The warm query path must stay allocation-free: the benchmarks below warm
# their session/workspace before ResetTimer, so any allocs/op they report
# is a steady-state regression (a fresh closure, a map, an append past
# capacity), not cold growth. The AllocsPerRun tests pin the same property
# per query; this stage pins it on the benchmark workload CI already runs.
alloc_out=$(go test -run '^$' -bench 'SequentialKNN$|DijkstraCSR$' -benchtime=50x -benchmem .)
printf '%s\n' "$alloc_out"
bad=$(printf '%s\n' "$alloc_out" | awk '/allocs\/op/ && $(NF-1) != 0 {print $1, $(NF-1)}')
if [ -n "$bad" ]; then
    echo "warm-path benchmarks allocate:" >&2
    printf '%s\n' "$bad" >&2
    exit 1
fi

echo "== debug endpoint smoke =="
# skbench -debug-addr must serve the published surfknn counter group on
# /debug/vars while a run executes. The run itself is tiny (fig 7, 16×16
# grid); -debug-hold keeps the server up long enough to probe it.
go build -o /tmp/skbench.check ./cmd/skbench
rm -f /tmp/skbench.check.out
/tmp/skbench.check -fig 7 -size 16 -queries 1 \
    -debug-addr 127.0.0.1:0 -debug-hold 30s > /tmp/skbench.check.out &
skbench_pid=$!
trap 'kill "$skbench_pid" 2>/dev/null; wait "$skbench_pid" 2>/dev/null || true' EXIT
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^# debug server listening on //p' /tmp/skbench.check.out | head -1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "skbench never announced its debug server" >&2
    cat /tmp/skbench.check.out >&2
    exit 1
fi
vars=$(curl -fsS "http://$addr/debug/vars")
for needle in '"surfknn"' '"queries"' '"pool"' '"work"'; do
    if ! printf '%s' "$vars" | grep -q "$needle"; then
        echo "/debug/vars is missing $needle" >&2
        printf '%s\n' "$vars" >&2
        exit 1
    fi
done
kill "$skbench_pid" 2>/dev/null
wait "$skbench_pid" 2>/dev/null || true
trap - EXIT

echo "== server smoke =="
# The full serving path end to end: skgen -db snapshots a query-ready
# terrain, skserve loads it and answers over HTTP, and /debug/vars exposes
# the surfknn_server metric group. SIGTERM must drain and exit zero.
go build -o /tmp/skgen.check ./cmd/skgen
go build -o /tmp/skserve.check ./cmd/skserve
/tmp/skgen.check -preset EP -size 16 -o /tmp/skserve.check.sdem \
    -db /tmp/skserve.check.skdb -db-objects 30 > /dev/null
rm -f /tmp/skserve.check.out
/tmp/skserve.check -snapshot /tmp/skserve.check.skdb \
    -addr 127.0.0.1:0 > /tmp/skserve.check.out &
skserve_pid=$!
trap 'kill "$skserve_pid" 2>/dev/null; wait "$skserve_pid" 2>/dev/null || true' EXIT
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^# skserve listening on //p' /tmp/skserve.check.out | head -1)
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "skserve never announced its address" >&2
    cat /tmp/skserve.check.out >&2
    exit 1
fi
healthz=$(curl -fsS "http://$addr/v1/healthz")
printf '%s' "$healthz" | grep -q '"status":"ok"'
printf '%s' "$healthz" | grep -q '"epoch"'
knn=$(curl -fsS -X POST "http://$addr/v1/knn" -d '{"x":800,"y":800,"k":3}')
if ! printf '%s' "$knn" | grep -q '"neighbors"'; then
    echo "/v1/knn returned no neighbors: $knn" >&2
    exit 1
fi
# SKQL end to end, still at epoch 0: POST /v1/query must answer the same
# statement with byte-identical neighbors to the typed /v1/knn route
# (same engine call, same JSON encoder — any drift means the planner
# changed the query), and POST /v1/explain must name the chosen
# algorithm at the plan root without executing anything.
query=$(curl -fsS -X POST "http://$addr/v1/query" \
    -d '{"q":"SELECT k=3 NEAREST (800, 800)"}')
knn_neighbors=$(printf '%s' "$knn" | grep -o '"neighbors":\[[^]]*\]')
query_neighbors=$(printf '%s' "$query" | grep -o '"neighbors":\[[^]]*\]')
if [ -z "$knn_neighbors" ] || [ "$knn_neighbors" != "$query_neighbors" ]; then
    echo "/v1/query neighbors differ from /v1/knn:" >&2
    echo "  knn:   $knn_neighbors" >&2
    echo "  query: $query_neighbors" >&2
    exit 1
fi
explain=$(curl -fsS -X POST "http://$addr/v1/explain" \
    -d '{"q":"SELECT k=3 NEAREST (800, 800)"}')
if ! printf '%s' "$explain" | grep -q '"algorithm":"mr3"'; then
    echo "/v1/explain did not pick the mr3 algorithm: $explain" >&2
    exit 1
fi
if ! printf '%s' "$explain" | grep -q '"plan":{"op":"mr3"'; then
    echo "/v1/explain plan root does not name the algorithm: $explain" >&2
    exit 1
fi
# Dynamic objects over HTTP: an upsert must bump the epoch, and the next
# query — served against the new epoch, not the cached epoch-0 entry —
# must both see the new object and carry the newer epoch in X-Epoch.
epoch0=$(curl -fsSi -X POST "http://$addr/v1/knn" -d '{"x":800,"y":800,"k":3}' \
    | tr -d '\r' | sed -n 's/^X-Epoch: //p')
curl -fsS -X POST "http://$addr/v1/objects" \
    -d '{"objects":[{"id":9001,"x":800,"y":800}]}' | grep -q '"epoch":1'
knn2=$(curl -fsSi -X POST "http://$addr/v1/knn" -d '{"x":800,"y":800,"k":3}')
epoch1=$(printf '%s' "$knn2" | tr -d '\r' | sed -n 's/^X-Epoch: //p')
if [ "${epoch0:-}" != "0" ] || [ "${epoch1:-}" != "1" ]; then
    echo "X-Epoch did not advance across an upsert (before=$epoch0 after=$epoch1)" >&2
    exit 1
fi
if ! printf '%s' "$knn2" | grep -q '"id":9001'; then
    echo "post-upsert /v1/knn does not see object 9001: $knn2" >&2
    exit 1
fi
# Continuous subscriptions end to end: subscribe → move to a point inside
# the safe region (hit: served from the cached top-k without engine work) →
# upsert at the anchor (the epoch bump invalidates the cache) → move again
# (miss: re-evaluated at the new epoch, X-Epoch advances) → unsubscribe
# (second move 404s). X-Safe-Region carries the per-move disposition.
sub=$(curl -fsSi -X POST "http://$addr/v1/subscribe" -d '{"x":830,"y":770,"k":3}')
sub_id=$(printf '%s' "$sub" | grep -o '"id":[0-9]*' | head -1 | cut -d: -f2)
if [ -z "$sub_id" ]; then
    echo "/v1/subscribe returned no id: $sub" >&2
    exit 1
fi
printf '%s' "$sub" | tr -d '\r' | grep -q '^X-Safe-Region: miss'
mv1=$(curl -fsSi -X POST "http://$addr/v1/subscribe/$sub_id/move" -d '{"x":830,"y":770}')
if ! printf '%s' "$mv1" | tr -d '\r' | grep -q '^X-Safe-Region: hit'; then
    echo "move inside the safe region was not a hit: $mv1" >&2
    exit 1
fi
mv1_epoch=$(printf '%s' "$mv1" | tr -d '\r' | sed -n 's/^X-Epoch: //p')
curl -fsS -X POST "http://$addr/v1/objects" \
    -d '{"objects":[{"id":9002,"x":830,"y":770}]}' | grep -q '"epoch":2'
mv2=$(curl -fsSi -X POST "http://$addr/v1/subscribe/$sub_id/move" -d '{"x":830,"y":770}')
if ! printf '%s' "$mv2" | tr -d '\r' | grep -q '^X-Safe-Region: miss'; then
    echo "post-upsert move was not re-evaluated: $mv2" >&2
    exit 1
fi
mv2_epoch=$(printf '%s' "$mv2" | tr -d '\r' | sed -n 's/^X-Epoch: //p')
if [ "${mv2_epoch:-0}" -le "${mv1_epoch:-0}" ]; then
    echo "X-Epoch did not advance across the invalidating upsert (before=$mv1_epoch after=$mv2_epoch)" >&2
    exit 1
fi
curl -fsS -X DELETE "http://$addr/v1/subscribe/$sub_id" | grep -q '"removed":true'
if curl -fsS -X POST "http://$addr/v1/subscribe/$sub_id/move" \
    -d '{"x":830,"y":770}' >/dev/null 2>&1; then
    echo "move on an unsubscribed id did not 404" >&2
    exit 1
fi
vars=$(curl -fsS "http://$addr/debug/vars")
for needle in '"surfknn_server"' '"requests"' '"cache"' '"objects"' '"epochs_created"' \
    '"surfknn_continuous"' '"region_hits"'; do
    if ! printf '%s' "$vars" | grep -q "$needle"; then
        echo "/debug/vars is missing $needle" >&2
        printf '%s\n' "$vars" >&2
        exit 1
    fi
done
kill -TERM "$skserve_pid"
if ! wait "$skserve_pid"; then
    echo "skserve exited non-zero after SIGTERM" >&2
    cat /tmp/skserve.check.out >&2
    exit 1
fi
grep -q '# bye' /tmp/skserve.check.out
trap - EXIT

echo "== shard fleet smoke =="
# Sharded serving end to end: skgen -tiles cuts the snapshot into a 2x1
# shard grid plus a manifest, two skserve processes each load one tile
# with their shard identity, and skcoord scatters queries across them.
# The coordinator must answer kNN, route an upsert to the owning tile
# while advancing one fleet-wide epoch (X-Epoch), and drain on SIGTERM.
go build -o /tmp/skcoord.check ./cmd/skcoord
/tmp/skgen.check -preset EP -size 16 -o /tmp/skfleet.check.sdem \
    -db /tmp/skfleet.check.skdb -db-objects 30 -tiles 2x1 > /dev/null
rm -f /tmp/skfleet.check.s0.out /tmp/skfleet.check.s1.out /tmp/skcoord.check.out
/tmp/skserve.check -snapshot /tmp/skfleet.check-tile-0-0.skdb \
    -shard-id tile-0-0 -addr 127.0.0.1:0 > /tmp/skfleet.check.s0.out &
shard0_pid=$!
/tmp/skserve.check -snapshot /tmp/skfleet.check-tile-1-0.skdb \
    -shard-id tile-1-0 -addr 127.0.0.1:0 > /tmp/skfleet.check.s1.out &
shard1_pid=$!
coord_pid=""
trap 'kill "$shard0_pid" "$shard1_pid" $coord_pid 2>/dev/null; wait 2>/dev/null || true' EXIT
shard0_addr=""
shard1_addr=""
for _ in $(seq 1 100); do
    shard0_addr=$(sed -n 's/^# skserve listening on //p' /tmp/skfleet.check.s0.out | head -1)
    shard1_addr=$(sed -n 's/^# skserve listening on //p' /tmp/skfleet.check.s1.out | head -1)
    [ -n "$shard0_addr" ] && [ -n "$shard1_addr" ] && break
    sleep 0.1
done
if [ -z "$shard0_addr" ] || [ -z "$shard1_addr" ]; then
    echo "shard servers never announced their addresses" >&2
    cat /tmp/skfleet.check.s0.out /tmp/skfleet.check.s1.out >&2
    exit 1
fi
/tmp/skcoord.check -manifest /tmp/skfleet.check.manifest.json \
    -addrs "$shard0_addr,$shard1_addr" -addr 127.0.0.1:0 \
    > /tmp/skcoord.check.out &
coord_pid=$!
coord_addr=""
for _ in $(seq 1 100); do
    coord_addr=$(sed -n 's/^# skcoord listening on //p' /tmp/skcoord.check.out | head -1)
    [ -n "$coord_addr" ] && break
    sleep 0.1
done
if [ -z "$coord_addr" ]; then
    echo "skcoord never announced its address" >&2
    cat /tmp/skcoord.check.out >&2
    exit 1
fi
healthz=$(curl -fsS "http://$coord_addr/v1/healthz")
printf '%s' "$healthz" | grep -q '"status":"ok"'
printf '%s' "$healthz" | grep -q '"id":"tile-0-0"'
printf '%s' "$healthz" | grep -q '"id":"tile-1-0"'
knn=$(curl -fsSi -X POST "http://$coord_addr/v1/knn" -d '{"x":800,"y":800,"k":3}')
if ! printf '%s' "$knn" | grep -q '"neighbors"'; then
    echo "coordinator /v1/knn returned no neighbors: $knn" >&2
    exit 1
fi
# SKQL through the coordinator: /v1/query must scatter-gather to the
# same byte-identical neighbors as the typed route, and /v1/explain must
# render the distributed plan — the root names the algorithm and the
# scatter nodes carry the tile IDs they touched.
query=$(curl -fsS -X POST "http://$coord_addr/v1/query" \
    -d '{"q":"SELECT k=3 NEAREST (800, 800)"}')
knn_neighbors=$(printf '%s' "$knn" | grep -o '"neighbors":\[[^]]*\]')
query_neighbors=$(printf '%s' "$query" | grep -o '"neighbors":\[[^]]*\]')
if [ -z "$knn_neighbors" ] || [ "$knn_neighbors" != "$query_neighbors" ]; then
    echo "coordinator /v1/query neighbors differ from /v1/knn:" >&2
    echo "  knn:   $knn_neighbors" >&2
    echo "  query: $query_neighbors" >&2
    exit 1
fi
explain=$(curl -fsS -X POST "http://$coord_addr/v1/explain" \
    -d '{"q":"SELECT k=3 NEAREST (800, 800)"}')
if ! printf '%s' "$explain" | grep -q '"plan":{"op":"mr3"'; then
    echo "coordinator /v1/explain plan root does not name the algorithm: $explain" >&2
    exit 1
fi
if ! printf '%s' "$explain" | grep -q '"tiles":\["tile-0-0","tile-1-0"\]'; then
    echo "coordinator /v1/explain scatter node is missing the tile IDs: $explain" >&2
    exit 1
fi
epoch0=$(printf '%s' "$knn" | tr -d '\r' | sed -n 's/^X-Epoch: //p')
curl -fsS -X POST "http://$coord_addr/v1/objects" \
    -d '{"objects":[{"id":9001,"x":800,"y":800}]}' | grep -q '"epoch":1'
knn2=$(curl -fsSi -X POST "http://$coord_addr/v1/knn" -d '{"x":800,"y":800,"k":3}')
epoch1=$(printf '%s' "$knn2" | tr -d '\r' | sed -n 's/^X-Epoch: //p')
if [ "${epoch0:-}" != "0" ] || [ "${epoch1:-}" != "1" ]; then
    echo "coordinator X-Epoch did not advance across an upsert (before=$epoch0 after=$epoch1)" >&2
    exit 1
fi
if ! printf '%s' "$knn2" | grep -q '"id":9001'; then
    echo "post-upsert coordinator /v1/knn does not see object 9001: $knn2" >&2
    exit 1
fi
kill -TERM "$coord_pid"
if ! wait "$coord_pid"; then
    echo "skcoord exited non-zero after SIGTERM" >&2
    cat /tmp/skcoord.check.out >&2
    exit 1
fi
grep -q '# bye' /tmp/skcoord.check.out
kill -TERM "$shard0_pid" "$shard1_pid"
wait "$shard0_pid" "$shard1_pid"
trap - EXIT

echo "== fuzz smoke =="
# A few seconds per target: enough to catch regressions in the seeds and
# shallow mutations without stalling the gate. -fuzzminimizetime is capped
# because minimising a large interesting input re-runs the target
# thousands of times (see internal/core/fuzz_targets_test.go).
for spec in \
    internal/core:FuzzLoadSnapshot \
    internal/core:FuzzMR3Invariants \
    internal/core:FuzzDistanceRangeInvariants \
    internal/core:FuzzObjstoreEquivalence \
    internal/sklang:FuzzParseRoundTrip; do
    dir=${spec%:*}
    target=${spec#*:}
    go test "./$dir" -run '^$' -fuzz "^${target}\$" -fuzztime 5s -fuzzminimizetime=5x
done

echo "== all checks passed =="

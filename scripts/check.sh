#!/usr/bin/env bash
# check.sh — the full verification gate, exactly what CI runs.
#
#   build → vet → sklint (self-hosted lint) → race tests → parallel-bench
#   smoke → fuzz smoke
#
# Fail-fast: the first failing stage aborts the run with its exit code.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== sklint =="
go run ./cmd/sklint ./...

echo "== sklint self-test (negative fixtures must fail) =="
# Each fixture package contains known findings; sklint exiting 0 on one
# would mean a rule silently stopped detecting anything.
for fixture in internal/lint/testdata/src/*/; do
    if go run ./cmd/sklint "./$fixture" >/dev/null 2>&1; then
        echo "sklint reported no findings on negative fixture $fixture" >&2
        exit 1
    fi
done

echo "== tests (race) =="
go test -race ./...

echo "== parallel benchmark smoke =="
# One iteration of the concurrent-query benchmarks: proves the session API
# still runs the parallel path (the race tests above prove it is safe).
go test -run '^$' -bench 'SequentialKNN|ParallelKNN' -benchtime=1x .

echo "== fuzz smoke =="
# A few seconds per target: enough to catch regressions in the seeds and
# shallow mutations without stalling the gate. -fuzzminimizetime is capped
# because minimising a large interesting input re-runs the target
# thousands of times (see internal/core/fuzz_targets_test.go).
for target in FuzzLoadSnapshot FuzzMR3Invariants FuzzDistanceRangeInvariants; do
    go test ./internal/core -run '^$' -fuzz "^${target}\$" -fuzztime 5s -fuzzminimizetime=5x
done

echo "== all checks passed =="

// Benchmarks mapping to the paper's evaluation (§5): one Benchmark per
// figure (Fig7–Fig11) at reduced scale, micro-benchmarks for the individual
// substrates, and ablation benchmarks for the design choices called out in
// DESIGN.md (integrated I/O regions, dummy lower bounds, crossing-line
// subdivision). The full-scale figure regeneration lives in cmd/skbench;
// these targets exist so `go test -bench=.` exercises every experiment code
// path quickly and reports machine-local cost numbers.
package surfknn

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"surfknn/internal/continuous"
	"surfknn/internal/core"
	"surfknn/internal/dem"
	"surfknn/internal/geodesic"
	"surfknn/internal/geom"
	"surfknn/internal/graph"
	"surfknn/internal/index"
	"surfknn/internal/mesh"
	"surfknn/internal/multires"
	"surfknn/internal/pathnet"
	"surfknn/internal/sdn"
	"surfknn/internal/server"
	"surfknn/internal/simplify"
	"surfknn/internal/storage"
	"surfknn/internal/workload"
)

// fixture is the shared benchmark terrain: BH preset, 33×33 grid, ~2.6 km².
type fixture struct {
	m    *mesh.Mesh
	db   *core.TerrainDB
	q    mesh.SurfacePoint
	a, b mesh.SurfacePoint
}

var (
	fxOnce sync.Once
	fx     fixture
)

func getFixture(tb testing.TB) *fixture {
	tb.Helper()
	fxOnce.Do(func() {
		g := dem.Synthesize(dem.BH, 32, 50, 2006)
		fx.m = mesh.FromGrid(g)
		db, err := core.BuildTerrainDB(fx.m, core.Config{})
		if err != nil {
			panic(err)
		}
		objs, err := workload.RandomObjects(fx.m, db.Loc, 80, 3)
		if err != nil {
			panic(err)
		}
		db.SetObjects(objs)
		fx.db = db
		ext := fx.m.Extent()
		fx.q, _ = db.SurfacePointAt(ext.Center())
		fx.a, _ = db.SurfacePointAt(geom.Vec2{X: ext.MinX + 100, Y: ext.MinY + 120})
		fx.b, _ = db.SurfacePointAt(geom.Vec2{X: ext.MaxX - 90, Y: ext.MaxY - 110})
	})
	return &fx
}

// --- Figure 7: CH vs EA single-pair distance ---

func BenchmarkFig7ChenHanExact(b *testing.B) {
	f := getFixture(b)
	solver := geodesic.NewSolver(f.m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.Distance(f.a, f.b)
	}
}

func BenchmarkFig7EAPathnet(b *testing.B) {
	f := getFixture(b)
	pn := pathnet.Build(f.m, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pn.Distance(f.a, f.b)
	}
}

// --- Figure 8: one distance-range estimation (ub at 50% + lb at 50%) ---

func BenchmarkFig8UpperBound(b *testing.B) {
	f := getFixture(b)
	tm := f.db.Tree.TimeForResolution(0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.db.Tree.UpperBound(f.m, f.a, f.b, tm, multires.IncludeAll)
	}
}

func BenchmarkFig8LowerBound(b *testing.B) {
	f := getFixture(b)
	region := f.m.Extent()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.db.MSDN.LowerBound(f.a.Pos, f.b.Pos, region, 0.5)
	}
}

// --- Figure 9: integrated I/O regions on/off ---

func BenchmarkFig9IntegrationOn(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.db.MR3(f.q, 10, core.S2, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9IntegrationOff(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.db.MR3(f.q, 10, core.S2, core.Options{DisableIOIntegration: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 10: MR3 (three schedules) vs EA, k = 10 ---

func benchMR3(b *testing.B, sched core.Schedule, k int) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.db.MR3(f.q, k, sched, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10MR3S1(b *testing.B) { benchMR3(b, core.S1, 10) }
func BenchmarkFig10MR3S2(b *testing.B) { benchMR3(b, core.S2, 10) }
func BenchmarkFig10MR3S3(b *testing.B) { benchMR3(b, core.S3, 10) }

func BenchmarkFig10EA(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.db.EA(f.q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 11: effect of object density (sparse vs dense, k = 5) ---

func benchDensity(b *testing.B, n int) {
	f := getFixture(b)
	objs, err := workload.RandomObjects(f.m, f.db.Loc, n, 17)
	if err != nil {
		b.Fatal(err)
	}
	f.db.SetObjects(objs)
	defer func() {
		objs, _ := workload.RandomObjects(f.m, f.db.Loc, 80, 3)
		f.db.SetObjects(objs)
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.db.MR3(f.q, 5, core.S2, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Sparse20(b *testing.B) { benchDensity(b, 20) }
func BenchmarkFig11Dense200(b *testing.B) { benchDensity(b, 200) }

// --- Ablations ---

func BenchmarkAblationDummyLBOn(b *testing.B) { benchMR3(b, core.S1, 10) }
func BenchmarkAblationDummyLBOff(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.db.MR3(f.q, 10, core.S1, core.Options{DisableDummyLB: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSubdiv1(b *testing.B) { benchSubdiv(b, 1) }
func BenchmarkAblationSubdiv4(b *testing.B) { benchSubdiv(b, 4) }

func benchSubdiv(b *testing.B, subdiv int) {
	f := getFixture(b)
	ms := sdn.BuildMSDNSubdiv(f.m, 0, subdiv)
	region := f.m.Extent()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms.LowerBound(f.a.Pos, f.b.Pos, region, 1.0)
	}
}

// --- Concurrency: sequential vs parallel QPS on one shared TerrainDB ---

// benchQueryPoints spreads deterministic query points over the terrain so
// the sequential and parallel benchmarks perform identical per-op work.
func benchQueryPoints(b *testing.B, f *fixture, n int) []mesh.SurfacePoint {
	b.Helper()
	ext := f.m.Extent()
	rng := rand.New(rand.NewSource(41))
	qs := make([]mesh.SurfacePoint, n)
	for i := range qs {
		p := geom.Vec2{
			X: ext.MinX + (0.1+0.8*rng.Float64())*ext.Width(),
			Y: ext.MinY + (0.1+0.8*rng.Float64())*ext.Height(),
		}
		q, err := f.db.SurfacePointAt(p)
		if err != nil {
			b.Fatal(err)
		}
		qs[i] = q
	}
	return qs
}

// BenchmarkSequentialKNN is the single-session baseline for
// BenchmarkParallelKNN: same queries, one goroutine.
func BenchmarkSequentialKNN(b *testing.B) {
	f := getFixture(b)
	qs := benchQueryPoints(b, f, 16)
	s := f.db.NewSession(nil)
	// Warm the session scratch to its high-water mark so the reported
	// allocs/op reflect the steady state (0) rather than cold growth
	// amortised over b.N.
	for _, q := range qs {
		if _, err := s.MR3(q, 5, core.S2, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MR3(qs[i%len(qs)], 5, core.S2, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialKNNObs is BenchmarkSequentialKNN with a registry
// installed. Comparing the two (benchstat, or eyeballing ns/op) is the
// guard that instrumentation overhead stays within noise: the tracked
// counters are a handful of atomic adds per query. It uses a private
// fixture so the registry never leaks into the uninstrumented baseline.
func BenchmarkSequentialKNNObs(b *testing.B) {
	f := getObsFixture(b)
	qs := benchQueryPoints(b, f, 16)
	s := f.db.NewSession(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MR3(qs[i%len(qs)], 5, core.S2, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	obsFxOnce sync.Once
	obsFx     fixture
)

// TestObsOverheadGuard pins the cost of the observability hooks on the
// BenchmarkSequentialKNN workload: a fully instrumented database (registry
// installed) must stay within 5% of the plain one. Since the instrumented
// side strictly includes the disabled-path work (the nil-registry checks),
// this bounds the disabled-instrumentation overhead by the same margin.
// The two sides are interleaved round-robin and best-of-N compared, so
// machine noise hits both equally; the true per-query delta is a handful
// of atomic adds.
func TestObsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard")
	}
	plain, inst := getFixture(t), getObsFixture(t)
	measure := func(f *fixture) time.Duration {
		s := f.db.NewSession(nil)
		const queries = 16
		if _, err := s.MR3(f.q, 5, core.S2, core.Options{}); err != nil { // warm the pool
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < queries; i++ {
			if _, err := s.MR3(f.q, 5, core.S2, core.Options{}); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	best := func(cur, d time.Duration) time.Duration {
		if cur == 0 || d < cur {
			return d
		}
		return cur
	}
	var bestPlain, bestInst time.Duration
	for round := 0; round < 5; round++ {
		bestPlain = best(bestPlain, measure(plain))
		bestInst = best(bestInst, measure(inst))
	}
	ratio := float64(bestInst) / float64(bestPlain)
	t.Logf("plain %v, instrumented %v, overhead %+.2f%%", bestPlain, bestInst, 100*(ratio-1))
	if ratio > 1.05 {
		t.Errorf("instrumentation overhead %.2f%% exceeds the 5%% budget (plain %v, instrumented %v)",
			100*(ratio-1), bestPlain, bestInst)
	}
}

// getObsFixture builds the same terrain as getFixture but with an obs
// registry installed, so instrumented and plain benchmarks never share a
// database.
func getObsFixture(tb testing.TB) *fixture {
	tb.Helper()
	obsFxOnce.Do(func() {
		g := dem.Synthesize(dem.BH, 32, 50, 2006)
		obsFx.m = mesh.FromGrid(g)
		db, err := core.BuildTerrainDB(obsFx.m, core.Config{})
		if err != nil {
			panic(err)
		}
		objs, err := workload.RandomObjects(obsFx.m, db.Loc, 80, 3)
		if err != nil {
			panic(err)
		}
		db.SetObjects(objs)
		db.Instrument(NewRegistry())
		obsFx.db = db
		ext := obsFx.m.Extent()
		obsFx.q, _ = db.SurfacePointAt(ext.Center())
	})
	return &obsFx
}

// BenchmarkParallelKNN runs the same query mix from GOMAXPROCS goroutines,
// one Session each, against the one shared TerrainDB. Throughput should
// scale near-linearly relative to BenchmarkSequentialKNN because sessions
// share no mutable state — the only serialisation point is the buffer-pool
// mutex.
func BenchmarkParallelKNN(b *testing.B) {
	f := getFixture(b)
	qs := benchQueryPoints(b, f, 16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s := f.db.NewSession(nil)
		i := 0
		for pb.Next() {
			if _, err := s.MR3(qs[i%len(qs)], 5, core.S2, core.Options{}); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// --- Substrate micro-benchmarks ---

func BenchmarkSimplifyQEM(b *testing.B) {
	g := dem.Synthesize(dem.BH, 16, 50, 5)
	for i := 0; i < b.N; i++ {
		m := mesh.FromGrid(g)
		if _, err := simplify.Simplify(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDijkstraMesh(b *testing.B) {
	f := getFixture(b)
	g := graph.New(f.m.NumVerts())
	for _, e := range f.m.Edges() {
		g.AddEdge(int(e.A), int(e.B), f.m.EdgeLength(e))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Dijkstra(g, i%f.m.NumVerts())
	}
}

// BenchmarkDijkstraCSR is BenchmarkDijkstraMesh on the flat layout: the
// graph finalized to CSR and the traversal run through a reusable
// Workspace (epoch-stamped dist/prev arrays, pooled heap). The delta
// against BenchmarkDijkstraMesh is what the SoA refactor buys one
// shortest-path pass: no per-call dist allocation, no pointer-chasing
// across adjacency slices.
func BenchmarkDijkstraCSR(b *testing.B) {
	f := getFixture(b)
	g := graph.New(f.m.NumVerts())
	for _, e := range f.m.Edges() {
		g.AddEdge(int(e.A), int(e.B), f.m.EdgeLength(e))
	}
	g.Finalize()
	w := graph.NewWorkspace(g.NumVertices())
	w.Dijkstra(g, 0) // warm the workspace buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Dijkstra(g, i%f.m.NumVerts())
	}
}

func BenchmarkRTreeKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	items := make([]index.Item, 10000)
	for i := range items {
		items[i] = index.Item{P: geom.Vec2{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}, ID: int64(i)}
	}
	tr := index.Bulk(items)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.KNN(geom.Vec2{X: 500, Y: 500}, 10, nil)
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	pool := storage.NewBufferPool(storage.NewMemFile(), 1024)
	tree, err := storage.NewBTree(pool)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(uint64(i*2654435761), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeSearch(b *testing.B) {
	pool := storage.NewBufferPool(storage.NewMemFile(), 1024)
	tree, err := storage.NewBTree(pool)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		tree.Insert(uint64(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Search(uint64(i % 100000))
	}
}

func BenchmarkMeshExtract(b *testing.B) {
	f := getFixture(b)
	tm := f.db.Tree.TimeForResolution(0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.db.Tree.ExtractMesh(f.m, tm)
	}
}

func BenchmarkSurfaceRange(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.db.SurfaceRange(f.q, 500, core.S2, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBothFamiliesOff(b *testing.B) { benchMR3(b, core.S1, 10) }
func BenchmarkAblationBothFamiliesOn(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.db.MR3(f.q, 10, core.S1, core.Options{BothFamilyLB: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving layer: HTTP overhead over the same engine ---

// benchServer drives one already-marshalled k-NN request through the full
// handler chain (routing, admission, session checkout, caching, metrics) —
// the cold/cached pair brackets what the HTTP layer adds to a raw MR3 call
// and what the result cache saves.
func benchServer(b *testing.B, cfg server.Config) {
	f := getFixture(b)
	s := server.New(f.db, cfg)
	body := []byte(`{"x":800,"y":800,"k":10}`)
	run := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v1/knn", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w.Code
	}
	if code := run(); code != http.StatusOK { // warm (and, when enabled, cache)
		b.Fatalf("status %d", code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := run(); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkServerKNNCold executes the query on every request (cache
// disabled): engine cost plus the serving layer's per-request overhead.
func BenchmarkServerKNNCold(b *testing.B) {
	benchServer(b, server.Config{CacheEntries: -1})
}

// BenchmarkServerKNNCached answers every request from the LRU result cache.
func BenchmarkServerKNNCached(b *testing.B) {
	benchServer(b, server.Config{CacheEntries: 16})
}

// --- Dynamic objects: k-NN under a live update stream ---

// BenchmarkKNNUnderUpdates measures k-NN latency while the object store
// takes interleaved inserts and deletes from the deterministic update-mix
// generator (8:1:1 query/insert/delete). Each iteration times one query;
// the updates drawn between queries are applied outside the timer, so the
// number compares directly against BenchmarkSequentialKNN: the delta is
// what epoch pinning plus a (possibly) non-quiesced store costs a reader.
// A private fixture keeps the epoch churn out of the shared database.
func BenchmarkKNNUnderUpdates(b *testing.B) {
	g := dem.Synthesize(dem.BH, 32, 50, 2006)
	m := mesh.FromGrid(g)
	db, err := core.BuildTerrainDB(m, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	objs, err := workload.RandomObjects(m, db.Loc, 80, 3)
	if err != nil {
		b.Fatal(err)
	}
	db.SetObjects(objs)
	mix, err := workload.NewUpdateMix(m, db.Loc, objs, workload.MixConfig{Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	store := db.ObjectStore()
	s := db.NewSession(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Drain update ops until the mix yields a query, then time it.
		var q mesh.SurfacePoint
		b.StopTimer()
		for {
			op := mix.Next()
			if op.Kind == workload.OpQuery {
				q = op.Query
				break
			}
			switch op.Kind {
			case workload.OpInsert:
				store.Upsert(op.Objects)
			case workload.OpDelete:
				store.Delete(op.IDs)
			}
		}
		b.StartTimer()
		if _, err := s.MR3(q, 5, core.S2, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContinuousKNN measures the continuous-query subsystem under the
// deterministic move-mix generator: 8 walkers random-walking their
// subscriptions while 1-in-50 operations upserts an object (epoch churn).
// One sub-benchmark per step size — the safe-region hit rate (reported as
// the "hits/move" metric) falls as steps grow, which is exactly the
// trade-off the safe radius certifies. Each iteration is one move through
// Monitor.Move: a hit serves the cached top-k with zero engine work, a miss
// pays a stripe re-evaluation.
func BenchmarkContinuousKNN(b *testing.B) {
	for _, step := range []float64{0.1, 0.5, 2} {
		b.Run(fmt.Sprintf("step=%g", step), func(b *testing.B) {
			// A dense private fixture: positive safe radii need more
			// enumerated candidates than k, and epoch churn must not touch
			// the shared database.
			g := dem.Synthesize(dem.EP, 16, 10, 2006)
			m := mesh.FromGrid(g)
			db, err := core.BuildTerrainDB(m, core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			objs, err := workload.RandomObjects(m, db.Loc, 100, 3)
			if err != nil {
				b.Fatal(err)
			}
			db.SetObjects(objs)
			mon, err := continuous.New(db, continuous.Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer mon.Close()
			mix, err := workload.NewMoveMix(m, db.Loc, workload.MoveMixConfig{Seed: 11, Walkers: 8, Step: step})
			if err != nil {
				b.Fatal(err)
			}
			ids := make([]uint64, 0, 8)
			for _, sp := range mix.Starts() {
				id, _, _, err := mon.Subscribe(nil, sp, 3, core.S1, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				ids = append(ids, id)
			}
			store := db.ObjectStore()
			var moves, hits int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Drain update ops until the mix yields a move, then time it.
				var op workload.MoveOp
				b.StopTimer()
				for {
					op = mix.Next()
					if op.Kind == workload.MoveOpMove {
						break
					}
					store.Upsert(op.Objects)
				}
				b.StartTimer()
				_, _, hit, err := mon.Move(nil, ids[op.Walker], op.Point.XY())
				if err != nil {
					b.Fatal(err)
				}
				moves++
				if hit {
					hits++
				}
			}
			b.StopTimer()
			if moves > 0 {
				b.ReportMetric(float64(hits)/float64(moves), "hits/move")
			}
		})
	}
}
